package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/topology"
	"repro/internal/virtual"
	"repro/internal/workload"
)

// uniformSpecs builds n identical hosts.
func uniformSpecs(n int, proc float64, mem int64, stor float64) []topology.HostSpec {
	out := make([]topology.HostSpec, n)
	for i := range out {
		out[i] = topology.HostSpec{Proc: proc, Mem: mem, Stor: stor}
	}
	return out
}

func mustTorus(t *testing.T, specs []topology.HostSpec, rows, cols int) *cluster.Cluster {
	t.Helper()
	c, err := topology.Torus2D(specs, rows, cols, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHMNTinyEndToEnd(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 2048, 2000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("a", 100, 256, 100)
	v.AddGuest("b", 200, 256, 100)
	v.AddGuest("c", 50, 256, 100)
	v.AddLink(0, 1, 10, 30)
	v.AddLink(1, 2, 1, 30)

	h := &HMN{}
	m, err := h.Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(cluster.VMMOverhead{}); err != nil {
		t.Fatalf("HMN produced an invalid mapping: %v", err)
	}
}

func TestHMNNameAndInterface(t *testing.T) {
	var m Mapper = &HMN{}
	if m.Name() != "HMN" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestHostingCoLocatesHighBandwidthPairs(t *testing.T) {
	// Two roomy hosts; the 100Mbps pair must land together because they
	// are processed first and fit on one host.
	c := mustTorus(t, uniformSpecs(4, 2000, 4096, 4000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("hot-a", 100, 512, 100)
	v.AddGuest("hot-b", 100, 512, 100)
	v.AddGuest("cold-a", 100, 512, 100)
	v.AddGuest("cold-b", 100, 512, 100)
	v.AddLink(0, 1, 100, 60) // hot pair
	v.AddLink(2, 3, 0.1, 60) // cold pair
	v.AddLink(1, 2, 0.2, 60) // joins the components

	led, err := cluster.NewLedger(c, cluster.VMMOverhead{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]graph.NodeID, v.NumGuests())
	for i := range assign {
		assign[i] = mapping.Unassigned
	}
	if err := hosting(led, v, assign, true); err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] {
		t.Fatalf("hot pair split across hosts %d and %d", assign[0], assign[1])
	}
}

func TestHostingSplitsWhenPairDoesNotFit(t *testing.T) {
	// Each host holds exactly one guest (memory-wise); a linked pair must
	// split with the most CPU-intensive guest on the best host.
	c := mustTorus(t, uniformSpecs(4, 2000, 512, 2000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("small", 50, 400, 10)
	v.AddGuest("big", 300, 400, 10)
	v.AddLink(0, 1, 10, 60)

	led, _ := cluster.NewLedger(c, cluster.VMMOverhead{})
	assign := []graph.NodeID{mapping.Unassigned, mapping.Unassigned}
	if err := hosting(led, v, assign, true); err != nil {
		t.Fatal(err)
	}
	if assign[0] == assign[1] {
		t.Fatal("pair cannot share a 512MB host")
	}
	if assign[0] == mapping.Unassigned || assign[1] == mapping.Unassigned {
		t.Fatal("both guests must be placed")
	}
}

func TestHostingPullsPartnerToAssignedHost(t *testing.T) {
	// Chain a-b-c with descending bandwidths: after (a,b) are co-located,
	// c must join b's host when it fits.
	c := mustTorus(t, uniformSpecs(4, 2000, 4096, 4000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("a", 100, 256, 100)
	v.AddGuest("b", 100, 256, 100)
	v.AddGuest("c", 100, 256, 100)
	v.AddLink(0, 1, 50, 60)
	v.AddLink(1, 2, 40, 60)

	led, _ := cluster.NewLedger(c, cluster.VMMOverhead{})
	assign := []graph.NodeID{mapping.Unassigned, mapping.Unassigned, mapping.Unassigned}
	if err := hosting(led, v, assign, true); err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("chain should share one roomy host: %v", assign)
	}
}

func TestHostingPlacesIsolatedGuests(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 2048, 2000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("linked-a", 100, 256, 100)
	v.AddGuest("linked-b", 100, 256, 100)
	v.AddGuest("loner", 100, 256, 100)
	v.AddLink(0, 1, 1, 60)

	led, _ := cluster.NewLedger(c, cluster.VMMOverhead{})
	assign := []graph.NodeID{mapping.Unassigned, mapping.Unassigned, mapping.Unassigned}
	if err := hosting(led, v, assign, true); err != nil {
		t.Fatal(err)
	}
	if assign[2] == mapping.Unassigned {
		t.Fatal("isolated guest left unplaced")
	}
}

func TestHostingFailsWhenNothingFits(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 128, 2000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("whale", 100, 4096, 100)
	v.AddGuest("minnow", 100, 64, 100)
	v.AddLink(0, 1, 1, 60)

	led, _ := cluster.NewLedger(c, cluster.VMMOverhead{})
	assign := []graph.NodeID{mapping.Unassigned, mapping.Unassigned}
	err := hosting(led, v, assign, true)
	if !errors.Is(err, ErrNoHostFits) {
		t.Fatalf("want ErrNoHostFits, got %v", err)
	}
}

func TestHostingRespectsCapacities(t *testing.T) {
	// Many guests, tight memory: whatever the layout, Eq. 2/3 must hold.
	rng := rand.New(rand.NewSource(4))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(300, 0.02), rng)

	led, _ := cluster.NewLedger(c, cluster.VMMOverhead{})
	assign := make([]graph.NodeID, v.NumGuests())
	for i := range assign {
		assign[i] = mapping.Unassigned
	}
	if err := hosting(led, v, assign, true); err != nil {
		t.Fatal(err)
	}
	m := mapping.New(c, v)
	copy(m.GuestHost, assign)
	// Only the assignment constraints can be checked pre-networking.
	for _, h := range c.Hosts() {
		var mem int64
		var stor float64
		for _, g := range m.GuestsOn(h.Node) {
			mem += v.Guest(g).Mem
			stor += v.Guest(g).Stor
		}
		if mem > h.Mem || stor > h.Stor {
			t.Fatalf("host %q overcommitted: %dMB/%.0fGB of %dMB/%.0fGB", h.Name, mem, stor, h.Mem, h.Stor)
		}
	}
}

func TestMigrationImprovesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(120, 0.02), rng)

	h := &HMN{}
	_, st, err := h.MapWithStats(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migration.ObjectiveAfter > st.Migration.ObjectiveBefore {
		t.Fatalf("migration worsened the objective: %v -> %v",
			st.Migration.ObjectiveBefore, st.Migration.ObjectiveAfter)
	}
	if st.Migration.Moves == 0 {
		t.Fatal("expected at least one migration on an unbalanced hosting")
	}
	if st.Migration.ObjectiveAfter >= st.Migration.ObjectiveBefore {
		t.Fatal("accepted moves must strictly improve the objective")
	}
}

func TestMigrationDisabledSkipsStage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(120, 0.02), rng)

	h := &HMN{DisableMigration: true}
	m, st, err := h.MapWithStats(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migration.Moves != 0 || st.MigrationSeconds != 0 {
		t.Fatal("DisableMigration must skip stage 2")
	}
	if err := m.Validate(cluster.VMMOverhead{}); err != nil {
		t.Fatalf("mapping invalid without migration: %v", err)
	}
}

func TestMigrationRespectsMaxMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(120, 0.02), rng)

	h := &HMN{MaxMigrations: 3}
	_, st, err := h.MapWithStats(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migration.Moves > 3 {
		t.Fatalf("MaxMigrations=3 but %d moves accepted", st.Migration.Moves)
	}
}

func TestMigrationKeepsMappingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(200, 0.02), rng)

	m, err := (&HMN{}).Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(cluster.VMMOverhead{}); err != nil {
		t.Fatalf("post-migration mapping invalid: %v", err)
	}
}

func TestMigrationSingleHostNoop(t *testing.T) {
	specs := uniformSpecs(1, 2000, 8192, 8000)
	c, err := topology.Line(specs, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := virtual.NewEnv()
	v.AddGuest("a", 100, 256, 100)
	led, _ := cluster.NewLedger(c, cluster.VMMOverhead{})
	assign := []graph.NodeID{c.HostNodes()[0]}
	if err := led.ReserveGuest(assign[0], 100, 256, 100); err != nil {
		t.Fatal(err)
	}
	if moves := migrate(led, v, assign, LoadResidualMIPS, 0); moves != 0 {
		t.Fatalf("single host cannot migrate, got %d moves", moves)
	}
}

func TestNetworkingIntraHostLinksAreTrivial(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 8192, 8000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("a", 10, 128, 10)
	v.AddGuest("b", 10, 128, 10)
	v.AddLink(0, 1, 500, 60)

	// Migration is disabled: stage 2 may legitimately split a co-located
	// pair to improve CPU balance (it only considers bandwidth when
	// choosing the cheapest victim), and this test pins stage 1+3
	// behaviour.
	m, err := (&HMN{DisableMigration: true}).Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	// Hosting co-locates the pair, so the path must be trivial even
	// though 500Mbps would strain physical links.
	if m.GuestHost[0] != m.GuestHost[1] {
		t.Fatal("pair should be co-located")
	}
	if m.LinkPath[0].Len() != 0 {
		t.Fatalf("intra-host link must have a trivial path, got %v", m.LinkPath[0])
	}
}

func TestNetworkingFailsOnImpossibleLink(t *testing.T) {
	// Hosts too small to co-locate the pair, and the virtual link demands
	// more bandwidth than any physical link carries.
	c := mustTorus(t, uniformSpecs(4, 2000, 512, 2000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("a", 10, 400, 10)
	v.AddGuest("b", 10, 400, 10)
	v.AddLink(0, 1, 5000, 60) // 5Gbps over 1Gbps links

	_, err := (&HMN{}).Map(c, v)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
}

func TestNetworkingFailsOnLatencyBudget(t *testing.T) {
	// A long line of tiny hosts: guests at the ends, budget below the
	// end-to-end latency.
	specs := uniformSpecs(10, 2000, 512, 2000)
	c, err := topology.Line(specs, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := virtual.NewEnv()
	for i := 0; i < 10; i++ {
		v.AddGuest("g", 10, 400, 10)
	}
	// Chain with generous budgets keeps hosting order predictable, then
	// one link with an impossible budget. All guests pin one per host
	// (mem 512 vs demand 400), so some link must span >= 9 hops... but
	// which is unpredictable. Use an explicit topology-driven check
	// instead: a pair on distinct hosts with a 1ms budget.
	v2 := virtual.NewEnv()
	v2.AddGuest("a", 10, 400, 10)
	v2.AddGuest("b", 10, 400, 10)
	v2.AddLink(0, 1, 1, 1) // 1ms budget, minimum hop costs 5ms
	_, err = (&HMN{}).Map(c, v2)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("want ErrNoPath, got %v", err)
	}
	_ = v
}

func TestNetworkOrderAblationsStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(150, 0.02), rng)

	for _, order := range []LinkOrder{OrderDescendingBW, OrderAscendingBW, OrderRandom} {
		h := &HMN{NetworkOrder: order, Rand: rand.New(rand.NewSource(1))}
		m, err := h.Map(c, v)
		if err != nil {
			t.Fatalf("order %v failed: %v", order, err)
		}
		if err := m.Validate(cluster.VMMOverhead{}); err != nil {
			t.Fatalf("order %v produced invalid mapping: %v", order, err)
		}
	}
}

func TestHMNWithVMMOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(100, 0.02), rng)

	ov := cluster.VMMOverhead{Proc: 100, Mem: 256, Stor: 20}
	m, err := (&HMN{Overhead: ov}).Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(ov); err != nil {
		t.Fatalf("mapping violates overhead-adjusted constraints: %v", err)
	}
}

func TestHMNOverheadTooLarge(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 512, 2000), 2, 2)
	v := virtual.NewEnv()
	v.AddGuest("a", 1, 1, 1)
	_, err := (&HMN{Overhead: cluster.VMMOverhead{Mem: 1024}}).Map(c, v)
	if !errors.Is(err, cluster.ErrOverheadExceedsCapacity) {
		t.Fatalf("want ErrOverheadExceedsCapacity, got %v", err)
	}
}

func TestHMNDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(100, 0.02), rng)

	m1, err := (&HMN{}).Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := (&HMN{}).Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	for g := range m1.GuestHost {
		if m1.GuestHost[g] != m2.GuestHost[g] {
			t.Fatalf("non-deterministic assignment for guest %d", g)
		}
	}
	for l := range m1.LinkPath {
		if m1.LinkPath[l].String() != m2.LinkPath[l].String() {
			t.Fatalf("non-deterministic path for link %d", l)
		}
	}
}

func TestHMNEmptyEnvironment(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 2048, 2000), 2, 2)
	m, err := (&HMN{}).Map(c, virtual.NewEnv())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(cluster.VMMOverhead{}); err != nil {
		t.Fatal(err)
	}
}

func TestHMNOnSwitchedCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Switched(specs, workload.SwitchPorts, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := workload.GenerateEnv(workload.HighLevelParams(150, 0.02), rng)
	m, err := (&HMN{}).Map(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(cluster.VMMOverhead{}); err != nil {
		t.Fatalf("switched mapping invalid: %v", err)
	}
	// No guest may sit on a switch.
	for g, node := range m.GuestHost {
		if !c.IsHost(node) {
			t.Fatalf("guest %d on switch node %d", g, node)
		}
	}
}

func TestHMNOnAllTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	v := workload.GenerateEnv(workload.HighLevelParams(80, 0.02), rng)

	builders := map[string]func() (*cluster.Cluster, error){
		"torus":    func() (*cluster.Cluster, error) { return topology.Torus2D(specs, 8, 5, 1000, 5) },
		"switched": func() (*cluster.Cluster, error) { return topology.Switched(specs, 64, 1000, 5) },
		"ring":     func() (*cluster.Cluster, error) { return topology.Ring(specs, 1000, 5) },
		"star":     func() (*cluster.Cluster, error) { return topology.Star(specs, 1000, 5) },
		"mesh":     func() (*cluster.Cluster, error) { return topology.FullMesh(specs, 1000, 5) },
		"tree":     func() (*cluster.Cluster, error) { return topology.SwitchTree(specs, 8, 1000, 5) },
		"random": func() (*cluster.Cluster, error) {
			return topology.RandomConnected(specs, 30, 1000, 5, rand.New(rand.NewSource(1)))
		},
	}
	for name, build := range builders {
		c, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := (&HMN{}).Map(c, v)
		if err != nil {
			// The ring's latency budgets can be genuinely infeasible for
			// distant pairs; a clean failure is acceptable there.
			if name == "ring" && errors.Is(err, ErrNoPath) {
				continue
			}
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Validate(cluster.VMMOverhead{}); err != nil {
			t.Fatalf("%s: invalid mapping: %v", name, err)
		}
	}
}

// Property: on random small workloads HMN either fails cleanly or
// produces a mapping satisfying every formal constraint.
func TestQuickHMNSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nHosts := 4 + rng.Intn(8)
		specs := workload.GenerateHosts(workload.ClusterParams{
			Hosts:   nHosts,
			ProcMin: 500, ProcMax: 3000,
			MemMin: 256, MemMax: 2048,
			StorMin: 100, StorMax: 1000,
		}, rng)
		c, err := topology.RandomConnected(specs, rng.Intn(10), 100, 5, rng)
		if err != nil {
			return false
		}
		guests := 1 + rng.Intn(nHosts*4)
		v := workload.GenerateEnv(workload.VirtualParams{
			Guests:  guests,
			Density: rng.Float64() * 0.3,
			ProcMin: 10, ProcMax: 100,
			MemMin: 32, MemMax: 512,
			StorMin: 1, StorMax: 100,
			BWMin: 0.1, BWMax: 5,
			LatMin: 20, LatMax: 80,
		}, rng)
		m, err := (&HMN{}).Map(c, v)
		if err != nil {
			return errors.Is(err, ErrNoHostFits) || errors.Is(err, ErrNoPath)
		}
		return m.Validate(cluster.VMMOverhead{}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoLocatedBW(t *testing.T) {
	v := virtual.NewEnv()
	v.AddGuest("a", 1, 1, 1)
	v.AddGuest("b", 1, 1, 1)
	v.AddGuest("c", 1, 1, 1)
	v.AddLink(0, 1, 5, 60)
	v.AddLink(0, 2, 3, 60)
	assign := []graph.NodeID{0, 0, 1}
	if got := coLocatedBW(v, assign, 0); got != 5 {
		t.Fatalf("coLocatedBW = %v, want 5 (only the co-located link counts)", got)
	}
	if got := coLocatedBW(v, assign, 2); got != 0 {
		t.Fatalf("coLocatedBW(c) = %v, want 0", got)
	}
}

func TestMigrationScopeAllHosts(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustTorus(t, specs, 8, 5)
	v := workload.GenerateEnv(workload.HighLevelParams(120, 0.02), rng)

	paper, stPaper, err := (&HMN{}).MapWithStats(c, v)
	if err != nil {
		t.Fatal(err)
	}
	wide, stWide, err := (&HMN{Scope: ScopeAllHosts}).MapWithStats(c, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.Validate(cluster.VMMOverhead{}); err != nil {
		t.Fatalf("ScopeAllHosts mapping invalid: %v", err)
	}
	// The widened scope explores a superset of moves per iteration; it
	// must accept at least as many.
	if stWide.Migration.Moves < stPaper.Migration.Moves {
		t.Fatalf("ScopeAllHosts made fewer moves (%d) than the paper scope (%d)",
			stWide.Migration.Moves, stPaper.Migration.Moves)
	}
	_ = paper
}
