package core

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/virtual"
)

// hostIndex maintains the Hosting stage's ordered view of the hosts —
// descending residual CPU, ties broken by node ID (§4.1) — incrementally
// instead of re-sorting after every placement. It registers itself as the
// ledger's proc hook, so *any* residual-CPU mutation (a Hosting
// placement, a Migration move, a consolidation repack, a repair re-map)
// repositions exactly the host that changed: one binary search plus a
// block shift, O(log H + d) for displacement d, against the seed's
// O(H log H) full resort per placement.
//
// The key (residual desc, node asc) is a strict total order, so the
// incrementally maintained permutation is byte-identical to what the old
// full stable re-sort produced.
//
// The index lives for one mapping attempt on one ledger; callers attach
// it via newHostIndex and must detach the hook (led.SetProcHook(nil))
// when the attempt ends. Like the ledger itself it is single-owner state
// under the session capability: never shared across goroutines.
type hostIndex struct {
	led *cluster.Ledger
	// order holds every host node, descending residual CPU, node ID
	// ascending on ties.
	order []graph.NodeID
	// pos maps dense host index -> position in order.
	pos []int
	// nodeOf maps dense host index -> graph node, so hook callbacks need
	// no cluster lookup.
	nodeOf []graph.NodeID
	// track false freezes the initial order (the DisableHostResort
	// ablation): the hook is never registered and order never moves.
	track bool
}

// newHostIndex builds the order from the ledger's current residuals and,
// when track is true, attaches the index to the ledger's proc hook.
func newHostIndex(led *cluster.Ledger, track bool) *hostIndex {
	return newHostIndexIn(led, track, nil)
}

// newHostIndexIn is newHostIndex drawing the order/pos/nodeOf arrays
// from ms so repeated admissions reuse them. The hostIndex struct
// itself is stack-like (one per attempt, small) and still allocated;
// ms may be nil, which allocates the arrays per call as before.
func newHostIndexIn(led *cluster.Ledger, track bool, ms *mapScratch) *hostIndex {
	c := led.Cluster()
	var hi *hostIndex
	if ms != nil {
		ms.hiOrder = nodesFor(ms.hiOrder, c.NumHosts())
		ms.hiPos = intsFor(ms.hiPos, c.NumHosts())
		ms.hiNode = nodesFor(ms.hiNode, c.NumHosts())
		for i, h := range c.Hosts() {
			ms.hiOrder[i] = h.Node
			ms.hiNode[i] = h.Node
		}
		hi = &hostIndex{led: led, order: ms.hiOrder, pos: ms.hiPos, nodeOf: ms.hiNode, track: track}
	} else {
		hi = &hostIndex{
			led:    led,
			order:  c.HostNodes(),
			pos:    make([]int, c.NumHosts()),
			nodeOf: c.HostNodes(),
			track:  track,
		}
	}
	slices.SortFunc(hi.order, func(a, b graph.NodeID) int {
		ra, rb := led.ResidualProc(a), led.ResidualProc(b)
		if ra != rb {
			if ra > rb {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
	for p, n := range hi.order {
		hi.pos[c.HostIdx(n)] = p
	}
	if track {
		led.SetProcHook(hi.fix)
	}
	return hi
}

// fix repositions the host with dense index i after its residual CPU
// changed. Invariant on entry: every host except i is in order. The new
// position is found by binary search over the order with i conceptually
// removed (which is sorted), then the gap is closed with one block copy.
func (hi *hostIndex) fix(i int) {
	ord := hi.order
	p := hi.pos[i]
	node := hi.nodeOf[i]
	r := hi.led.ResidualProc(node)

	// q = number of other hosts sorting strictly before node = its final
	// position. Conceptual index m of the self-removed array maps to
	// ord[m] for m < p and ord[m+1] otherwise.
	lo, hiB := 0, len(ord)-1
	for lo < hiB {
		mid := (lo + hiB) / 2
		other := ord[mid]
		if mid >= p {
			other = ord[mid+1]
		}
		ro := hi.led.ResidualProc(other)
		if ro > r || (ro == r && other < node) {
			lo = mid + 1
		} else {
			hiB = mid
		}
	}
	q := lo
	if q == p {
		return
	}
	c := hi.led.Cluster()
	if q > p {
		copy(ord[p:q], ord[p+1:q+1])
	} else {
		copy(ord[q+1:p+1], ord[q:p])
	}
	ord[q] = node
	for k := min(p, q); k <= max(p, q); k++ {
		hi.pos[c.HostIdx(ord[k])] = k
	}
}

// place reserves guest g on node; the proc hook repositions the host.
func (hi *hostIndex) place(node graph.NodeID, g virtual.Guest, assign []graph.NodeID) {
	// Reservation cannot fail: callers check Fits first, and CPU is not
	// a constraint.
	if err := hi.led.ReserveGuest(node, g.Proc, g.Mem, g.Stor); err != nil {
		panic(fmt.Sprintf("core: placement after Fits check failed: %v", err))
	}
	assign[g.ID] = node
}

// firstFit returns the first host in index order that fits g, skipping
// hosts in the skip set, or false when none does.
func (hi *hostIndex) firstFit(g virtual.Guest, skip map[graph.NodeID]bool) (graph.NodeID, bool) {
	for _, node := range hi.order {
		if skip != nil && skip[node] {
			continue
		}
		if hi.led.Fits(node, g.Mem, g.Stor) {
			return node, true
		}
	}
	return graph.NodeID(0), false
}

// firstFitAfter returns the first host that fits g strictly after the
// position of node `after` in the current order, or false. This
// implements §4.1's "the second guest is assigned to the next host which
// the guest fits in".
func (hi *hostIndex) firstFitAfter(g virtual.Guest, after graph.NodeID) (graph.NodeID, bool) {
	idx := hi.pos[hi.led.Cluster().HostIdx(after)]
	for i := idx + 1; i < len(hi.order); i++ {
		if hi.led.Fits(hi.order[i], g.Mem, g.Stor) {
			return hi.order[i], true
		}
	}
	return graph.NodeID(0), false
}
