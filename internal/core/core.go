// Package core implements the paper's primary contribution: the
// Hosting-Migration-Networking (HMN) heuristic (§4) for mapping a virtual
// environment onto an emulation testbed. The three stages run in
// sequence:
//
//   - Hosting (§4.1) finds a preliminary guest-to-host assignment that
//     co-locates guests joined by high-bandwidth virtual links, to spare
//     physical bandwidth for the links that cannot be internalised.
//   - Migration (§4.2) rebalances the assignment, repeatedly moving a
//     cheap-to-move guest off the most loaded host whenever doing so
//     lowers the load-balance objective (Eq. 10).
//   - Networking (§4.3) routes every remaining inter-host virtual link
//     over a physical path with the modified 1-constrained A*Prune of
//     Algorithm 1, maximising bottleneck bandwidth under the latency
//     budget.
//
// The heuristic fails — as the paper's does — when some guest fits on no
// host (ErrNoHostFits) or some virtual link admits no feasible path
// (ErrNoPath).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// Mapper is anything that can solve the mapping problem of §3.2. The
// returned mapping satisfies constraints Eq. (1)-(9) (callers can confirm
// with Mapping.Validate); on failure the error wraps one of the sentinel
// errors of this package or of the baselines.
type Mapper interface {
	// Name returns the short identifier used in result tables
	// (e.g. "HMN", "R", "RA", "HS").
	Name() string
	// Map computes a full mapping of v onto c, or fails.
	Map(c *cluster.Cluster, v *virtual.Env) (*mapping.Mapping, error)
}

// ErrNoHostFits is returned when the Hosting stage finds a guest whose
// memory/storage demands fit on no host (§4.1: "If in some moment no host
// supports an unassigned guest, the heuristic fails").
var ErrNoHostFits = errors.New("core: no host fits guest")

// ErrNoPath is returned when the Networking stage cannot route a virtual
// link (§4.3: "If in some moment a path for a virtual link cannot be
// found, the heuristic fails").
var ErrNoPath = errors.New("core: no feasible path for virtual link")

// LinkOrder selects the order the Networking stage maps virtual links in.
// The paper prescribes descending bandwidth; the alternatives exist for
// the ablation benchmarks.
type LinkOrder int

const (
	// OrderDescendingBW maps the most demanding links first (the paper's
	// choice, §4.3).
	OrderDescendingBW LinkOrder = iota
	// OrderAscendingBW maps the least demanding links first (ablation).
	OrderAscendingBW
	// OrderRandom maps links in random order (ablation; requires Rand).
	OrderRandom
)

// LoadMetric selects how the Migration stage ranks host load. The paper
// balances absolute residual CPU (Eq. 10); the utilisation variant exists
// for the ablation study of DESIGN.md §7.
type LoadMetric int

const (
	// LoadResidualMIPS ranks hosts by residual CPU in MIPS: the most
	// loaded host is the one with the least CPU left (paper-faithful —
	// the objective function is the stddev of exactly this quantity).
	LoadResidualMIPS LoadMetric = iota
	// LoadUtilization ranks hosts by demand/capacity ratio instead.
	LoadUtilization
)

// HMN is the Hosting-Migration-Networking heuristic. The zero value is a
// valid paper-faithful configuration with no VMM overhead; the optional
// fields exist for the ablation benchmarks.
type HMN struct {
	// Overhead is deducted from every host before mapping (§3.1).
	Overhead cluster.VMMOverhead

	// DisableMigration skips stage 2, isolating its contribution.
	DisableMigration bool

	// DisableHostResort keeps the Hosting stage's host list in its
	// initial CPU order instead of re-sorting after every placement.
	DisableHostResort bool

	// NetworkOrder overrides the order links are routed in.
	NetworkOrder LinkOrder

	// Metric overrides how Migration ranks host load.
	Metric LoadMetric

	// Scope widens Migration's donor set (ScopeAllHosts descends from
	// any host instead of only the most loaded one — a §6 extension).
	Scope MigrationScope

	// AStar tunes the A*Prune search (expansion cap, dominance pruning).
	AStar graph.AStarPruneOptions

	// Rand supplies randomness for OrderRandom; unused otherwise.
	Rand *rand.Rand

	// MaxMigrations caps stage 2's accepted moves; 0 means the natural
	// termination rule ("while the load balance factor improves").
	MaxMigrations int

	// RouteWorkers > 1 routes the Networking stage's inter-host links
	// speculatively on that many goroutines with a deterministic
	// in-order merge (parroute.go); results are bit-identical to the
	// sequential stage for any worker count. 0 or 1 routes sequentially.
	RouteWorkers int

	// ExactObjective makes every Migration what-if recompute the Eq. (10)
	// objective from scratch (population stddev over all residuals)
	// instead of using the ledger's O(1) running-sum delta — a debug mode
	// for cross-checking the incremental objective, cross-validated by
	// the property tests.
	ExactObjective bool
}

// Name implements Mapper.
func (h *HMN) Name() string { return "HMN" }

// Map runs the three HMN stages and returns a complete, constraint-
// satisfying mapping of v onto c, or an error wrapping ErrNoHostFits /
// ErrNoPath describing the first unplaceable guest or unroutable link.
func (h *HMN) Map(c *cluster.Cluster, v *virtual.Env) (*mapping.Mapping, error) {
	m, _, err := h.MapWithStats(c, v)
	return m, err
}

// StageStats breaks an HMN run down by stage, for the Figure 1
// reproduction (which attributes mapping time to the Networking stage)
// and the migration ablation.
type StageStats struct {
	HostingSeconds    float64
	MigrationSeconds  float64
	NetworkingSeconds float64
	Migration         MigrationStats
}

// MapWithStats is Map plus per-stage wall times and migration counters.
// On error the stats cover the stages that ran before the failure.
func (h *HMN) MapWithStats(c *cluster.Cluster, v *virtual.Env) (*mapping.Mapping, StageStats, error) {
	var st StageStats
	led, err := cluster.NewLedger(c, h.Overhead)
	if err != nil {
		return nil, st, fmt.Errorf("HMN: %w", err)
	}
	m := mapping.New(c, v)

	hi := newHostIndex(led, !h.DisableHostResort)
	defer led.SetProcHook(nil)

	t0 := time.Now() //hmn:wallclock
	if err := hostingIndexed(led, v, m.GuestHost, hi); err != nil {
		st.HostingSeconds = time.Since(t0).Seconds() //hmn:wallclock
		return nil, st, fmt.Errorf("HMN hosting stage: %w", err)
	}
	st.HostingSeconds = time.Since(t0).Seconds() //hmn:wallclock

	if !h.DisableMigration {
		t1 := time.Now() //hmn:wallclock
		st.Migration.ObjectiveBefore = mapping.Objective(led.ResidualProcAll())
		st.Migration.Moves = migrateScoped(led, v, m.GuestHost, h.Metric, h.MaxMigrations, h.Scope, hi, h.ExactObjective, nil, nil)
		st.Migration.ObjectiveAfter = mapping.Objective(led.ResidualProcAll())
		st.MigrationSeconds = time.Since(t1).Seconds() //hmn:wallclock
	}

	t2 := time.Now() //hmn:wallclock
	if err := network(led, v, m.GuestHost, m.LinkPath, h.NetworkOrder, h.AStar, h.Rand, nil, h.RouteWorkers, nil); err != nil {
		st.NetworkingSeconds = time.Since(t2).Seconds() //hmn:wallclock
		return nil, st, fmt.Errorf("HMN networking stage: %w", err)
	}
	st.NetworkingSeconds = time.Since(t2).Seconds() //hmn:wallclock
	return m, st, nil
}

// HostingStage runs HMN's Hosting stage (§4.1) alone on an existing
// ledger: assign must start all mapping.Unassigned; on success every
// entry holds a host node and the ledger carries the reservations. It
// exists for the HS baseline, which combines the paper's hosting with a
// DFS link search, and for tests that exercise the stage in isolation.
func HostingStage(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID) error {
	return hosting(led, v, assign, true)
}

// MigrationStage runs HMN's Migration stage (§4.2) alone on an existing
// ledger carrying the reservations behind assign, with the paper's load
// metric and donor scope. It returns the number of accepted moves, and
// exists for benchmarks and tests that isolate the stage.
func MigrationStage(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID) int {
	hi := newHostIndex(led, true)
	defer led.SetProcHook(nil)
	return migrateScoped(led, v, assign, LoadResidualMIPS, 0, ScopeMostLoaded, hi, false, nil, nil)
}

var _ Mapper = (*HMN)(nil)
