package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/topology"
	"repro/internal/virtual"
	"repro/internal/workload"
)

// ringSession builds a ring cluster (every link cut leaves a detour) and
// an environment with loose latency budgets so detours stay feasible.
func ringSession(t *testing.T) (*Session, *virtual.Env) {
	t.Helper()
	rng := rand.New(rand.NewSource(40))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Ring(specs, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(c, cluster.VMMOverhead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := workload.GenerateEnv(workload.VirtualParams{
		Guests: 30, Density: 0.05,
		ProcMin: 50, ProcMax: 100,
		MemMin: 128, MemMax: 256,
		StorMin: 10, StorMax: 50,
		BWMin: 0.5, BWMax: 1,
		LatMin: 150, LatMax: 200,
	}, rng)
	return s, env
}

// TestRepairLinkFailureKeepsPlacements pins the cheap path: after a link
// failure the repair engine must keep every guest placement and re-route
// only the broken paths around the cut edge.
func TestRepairLinkFailureKeepsPlacements(t *testing.T) {
	s, env := ringSession(t)
	m, err := s.Map(env)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for _, p := range m.LinkPath {
		if p.Len() > 0 {
			victim = p.Edges[0]
			break
		}
	}
	if victim == -1 {
		t.Skip("no inter-host paths in this draw")
	}
	results, err := s.FailLinkAndRepair(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("the mapping uses the failed link and must be evicted")
	}
	for _, res := range results {
		if res.Outcome != RepairRepaired {
			t.Fatalf("link failure on a ring must be repairable in place, got %v (%v)", res.Outcome, res.Err)
		}
		for g := range res.New.GuestHost {
			if res.New.GuestHost[g] != res.Old.GuestHost[g] {
				t.Fatalf("guest %d moved during a repaired outcome", g)
			}
		}
		for _, p := range res.New.LinkPath {
			for _, eid := range p.Edges {
				if eid == victim {
					t.Fatal("repaired path crosses the cut edge")
				}
			}
		}
		if err := res.New.Validate(cluster.VMMOverhead{}); err != nil {
			t.Fatalf("repaired mapping violates Eq. (1)-(9): %v", err)
		}
		// The old handle is gone, the new one is live.
		if err := s.Release(res.Old); !errors.Is(err, ErrNotActive) {
			t.Fatal("evicted mapping must not be active")
		}
	}
	if s.Active() != len(results) {
		t.Fatalf("Active = %d, want %d repaired environments", s.Active(), len(results))
	}
}

// TestRepairHostFailureReplaces pins the fallback: after a host failure
// the cheap path is impossible (the host is quarantined), so the engine
// must fully re-map the evicted environments off the failed host.
func TestRepairHostFailureReplaces(t *testing.T) {
	_, s := sessionFixture(t)
	m, err := s.Map(smallEnv(50, 40))
	if err != nil {
		t.Fatal(err)
	}
	victim := m.GuestHost[0]
	results, err := s.FailHostAndRepair(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("the mapping uses the failed host and must be evicted")
	}
	for _, res := range results {
		if res.Outcome != RepairReplaced {
			t.Fatalf("host failure must force a full re-map, got %v (%v)", res.Outcome, res.Err)
		}
		for g, node := range res.New.GuestHost {
			if node == victim {
				t.Fatalf("guest %d re-placed on the failed host", g)
			}
		}
		if err := res.New.Validate(cluster.VMMOverhead{}); err != nil {
			t.Fatalf("replacement mapping violates Eq. (1)-(9): %v", err)
		}
	}
}

// TestRepairUnrecoverable pins the terminal outcome: when the degraded
// cluster cannot hold an environment, repair reports it unrecoverable,
// the environment stays evicted, and its resources are fully returned.
func TestRepairUnrecoverable(t *testing.T) {
	c := mustTorus(t, uniformSpecs(4, 2000, 1024, 1000), 2, 2)
	s, err := NewSession(c, cluster.VMMOverhead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline := s.ResidualProc()
	// One guest per host: losing any host makes the environment unmappable.
	env := virtual.NewEnv()
	for i := 0; i < 4; i++ {
		env.AddGuest("g", 100, 1000, 100)
	}
	m, err := s.Map(env)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.FailHostAndRepair(m.GuestHost[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Outcome != RepairUnrecoverable {
		t.Fatalf("results = %+v, want one unrecoverable", results)
	}
	if results[0].New != nil {
		t.Fatal("unrecoverable result must carry no new mapping")
	}
	if !errors.Is(results[0].Err, ErrNoHostFits) {
		t.Fatalf("Err = %v, want ErrNoHostFits", results[0].Err)
	}
	if s.Active() != 0 {
		t.Fatalf("Active = %d after unrecoverable repair", s.Active())
	}
	after := s.ResidualProc()
	for i := range baseline {
		if math.Abs(baseline[i]-after[i]) > 1e-9 {
			t.Fatalf("host %d residual not conserved after unrecoverable repair", i)
		}
	}
}

// TestFailRestoreSentinels pins the operator-typo protection: failing an
// already-failed target and restoring a healthy one are errors, not
// silent no-ops.
func TestFailRestoreSentinels(t *testing.T) {
	c, s := sessionFixture(t)
	host := c.Hosts()[0].Node

	if err := s.RestoreHost(host); !errors.Is(err, ErrNotFailed) {
		t.Fatalf("restoring a healthy host: got %v, want ErrNotFailed", err)
	}
	if _, err := s.FailHost(host); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailHost(host); !errors.Is(err, ErrAlreadyFailed) {
		t.Fatalf("double host failure: got %v, want ErrAlreadyFailed", err)
	}
	if err := s.RestoreHost(host); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreHost(host); !errors.Is(err, ErrNotFailed) {
		t.Fatalf("double host restore: got %v, want ErrNotFailed", err)
	}

	if err := s.RestoreLink(0); !errors.Is(err, ErrNotFailed) {
		t.Fatalf("restoring a healthy link: got %v, want ErrNotFailed", err)
	}
	if _, err := s.FailLink(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailLink(0); !errors.Is(err, ErrAlreadyFailed) {
		t.Fatalf("double link failure: got %v, want ErrAlreadyFailed", err)
	}
	if err := s.RestoreLink(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreLink(0); !errors.Is(err, ErrNotFailed) {
		t.Fatalf("double link restore: got %v, want ErrNotFailed", err)
	}

	if _, err := s.FailHost(graph.NodeID(-1)); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("failing a non-host: got %v, want ErrUnknownTarget", err)
	}
	if _, err := s.FailLink(1 << 30); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("failing an out-of-range edge: got %v, want ErrUnknownTarget", err)
	}
}

// TestFailHostEvictionOrderDeterministic is the headline bugfix
// regression: evictions must come back in admission order, stable across
// repeated fail cycles over freshly-allocated mappings — the pointer-
// address sort this replaces varied with the allocator's whims. Each
// trial churns the session (release half, admit more, force a GC) so
// recycled allocations make pointer order diverge from admission order.
func TestFailHostEvictionOrderDeterministic(t *testing.T) {
	var want []string
	for trial := 0; trial < 5; trial++ {
		c := mustTorus(t, uniformSpecs(4, 4000, 8192, 8000), 2, 2)
		s, err := NewSession(c, cluster.VMMOverhead{}, nil)
		if err != nil {
			t.Fatal(err)
		}

		labels := make(map[*mapping.Mapping]string)
		var admitted []*mapping.Mapping // admission order, including released
		released := make(map[*mapping.Mapping]bool)
		admit := func(label string, seed int64) {
			m, err := s.Map(smallEnv(seed, 6))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			labels[m] = label
			admitted = append(admitted, m)
		}
		for i := 0; i < 10; i++ {
			admit(fmt.Sprintf("a%d", i), int64(500+i))
		}
		for i := 0; i < 10; i += 2 {
			if err := s.Release(admitted[i]); err != nil {
				t.Fatal(err)
			}
			released[admitted[i]] = true
		}
		runtime.GC() // encourage the allocator to recycle the freed mappings
		for i := 0; i < 5; i++ {
			admit(fmt.Sprintf("b%d", i), int64(600+i))
		}

		victim := c.Hosts()[0].Node
		affected, err := s.FailHost(victim)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, m := range affected {
			got = append(got, labels[m])
		}
		// Expected: the active tenants that use the host, in admission order.
		var expect []string
		for _, m := range admitted {
			if released[m] {
				continue
			}
			for _, node := range m.GuestHost {
				if node == victim {
					expect = append(expect, labels[m])
					break
				}
			}
		}
		if !equalStrings(got, expect) {
			t.Fatalf("trial %d: eviction order %v, want admission order %v", trial, got, expect)
		}
		if trial == 0 {
			want = got
		} else if !equalStrings(want, got) {
			t.Fatalf("trial %d eviction order %v differs from trial 0's %v", trial, got, want)
		}
	}
	if len(want) == 0 {
		t.Fatal("no tenant used the failed host; the fixture is vacuous")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
