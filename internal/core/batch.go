package core

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// BatchStats reports how one MapBatch call was admitted.
type BatchStats struct {
	// Committed counts environments whose snapshot mapping validated
	// against the live residuals and was committed as-is (the mapping ran
	// with no lock held).
	Committed int
	// Fallbacks counts environments re-mapped serially under the lock
	// after their snapshot mapping failed validation — typically because
	// an earlier batch member claimed the same residuals.
	Fallbacks int
	// CommitSeconds is the total time the batch held the session lock:
	// the snapshot clone plus the single commit pass (including any
	// serialized fallback re-maps inside it).
	CommitSeconds float64
}

// MapBatch deploys several environments in one admission round: one
// residual snapshot is taken under a brief lock, every environment is
// mapped concurrently against that snapshot with no lock held, and a
// single lock acquisition then commits the mappings in input order —
// validating each against the live residuals (which include the batch
// members committed before it) and atomically applying it, or, when
// validation fails, re-mapping that environment serially on the spot.
//
// The per-environment guarantee is the same as Map's: an environment is
// rejected only if the serialized path would reject it at its commit
// position, and a failed environment never changes the residuals. The
// batch amortises what per-environment admission cannot: n environments
// cost one snapshot, one lock acquisition for all commits, and fully
// parallel mapping work in between.
//
// maps[i] and errs[i] describe envs[i]; exactly one of them is non-nil.
func (s *Session) MapBatch(envs []*virtual.Env) (maps []*mapping.Mapping, errs []error, bst BatchStats) {
	return s.MapBatchTagged(envs, nil)
}

// MapBatchTagged is MapBatch with a caller tag per environment (tags may
// be nil for an untagged batch; otherwise len(tags) must equal
// len(envs)). The batch's successful admissions are emitted as one
// EventBatch — a single atomic entry in the operation log, mirroring the
// single lock acquisition that committed them.
func (s *Session) MapBatchTagged(envs []*virtual.Env, tags []string) (maps []*mapping.Mapping, errs []error, bst BatchStats) {
	n := len(envs)
	maps = make([]*mapping.Mapping, n)
	errs = make([]error, n)
	if n == 0 {
		return maps, errs, bst
	}
	tagOf := func(i int) string {
		if tags == nil {
			return ""
		}
		return tags[i]
	}

	start := time.Now() //hmn:wallclock
	s.mu.Lock()
	snap := s.snapshotLocked()
	ver := s.version
	s.mu.Unlock()
	bst.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock

	// Every environment maps off-lock on its own private ledger; the
	// first reuses the snapshot itself (it is discarded afterwards — the
	// commit pass below replays net effects onto the live ledger, never
	// swaps a snapshot in). Clones are taken before any mapping starts,
	// so the goroutines share nothing.
	leds := make([]*cluster.Ledger, n)
	leds[0] = snap
	for i := 1; i < n; i++ {
		leds[i] = snap.Clone()
	}
	attempts := make([]*mapping.Mapping, n)
	attemptErr := make([]error, n)
	var wg sync.WaitGroup
	for i := range envs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := mapping.New(s.c, envs[i])
			ms := getMapScratch()
			err := s.mapper.mapOnLedger(leds[i], envs[i], m, s.ar, ms)
			putMapScratch(ms)
			if err != nil {
				attemptErr[i] = err
				return
			}
			attempts[i] = m
		}(i)
	}
	wg.Wait()

	start = time.Now() //hmn:wallclock
	s.mu.Lock()
	s.freeSnapshotLocked(snap)
	// While nothing has committed since the snapshot — no concurrent
	// admission and no earlier batch member — the snapshot residuals ARE
	// the live residuals, so a mapping failure against them is exactly
	// the failure the serialized path would report. Once anything
	// commits, failures are stale and must be retried serially.
	live := s.version == ver
	var admits []AdmitInfo
	for i := range envs {
		if attemptErr[i] == nil {
			if seq, err := s.commitTxnLocked(envs[i], attempts[i], tagOf(i)); err == nil {
				maps[i] = attempts[i]
				admits = append(admits, AdmitInfo{Seq: seq, Tag: tagOf(i), Env: envs[i], M: attempts[i]})
				bst.Committed++
				live = false
				s.optimisticCommits.Add(1)
				continue
			}
		} else if live {
			errs[i] = attemptErr[i]
			continue
		}
		// Validation lost to an earlier commit, or the snapshot failure
		// may be stale: re-map serially against the live residuals, under
		// the lock we already hold.
		bst.Fallbacks++
		s.fallbacks.Add(1)
		attempt := s.snapshotLocked()
		m := mapping.New(s.c, envs[i])
		ms := getMapScratch()
		err := s.mapper.mapOnLedger(attempt, envs[i], m, s.ar, ms)
		putMapScratch(ms)
		s.freeSnapshotLocked(attempt)
		if err != nil {
			errs[i] = err
			continue
		}
		if seq, err := s.commitTxnLocked(envs[i], m, tagOf(i)); err == nil {
			maps[i] = m
			admits = append(admits, AdmitInfo{Seq: seq, Tag: tagOf(i), Env: envs[i], M: m})
			live = false
		} else {
			errs[i] = err
		}
	}
	if len(admits) > 0 {
		s.emitLocked(Event{Type: EventBatch, Batch: admits})
	}
	s.mu.Unlock()
	bst.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock
	return maps, errs, bst
}
