//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// The allocation-budget tests skip under it: the instrumented runtime
// allocates shadow state the budgets were never meant to cover.
const raceEnabled = true
