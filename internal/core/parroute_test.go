package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/virtual"
	"repro/internal/workload"
)

func mustSwitched(t *testing.T, specs []topology.HostSpec) *cluster.Cluster {
	t.Helper()
	c, err := topology.Switched(specs, workload.SwitchPorts, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// parRouteWorkerCounts are the worker counts every property run
// compares: 1 is the sequential reference; 2 and 8 exercise sparse and
// oversubscribed speculation rounds.
var parRouteWorkerCounts = []int{1, 2, 8}

// admissionOutcome is one admission's observable result, comparable
// across worker counts: the committed mapping (nil on failure) and the
// exact error text.
type admissionOutcome struct {
	guestHost []int64
	pathNodes [][]int64
	errText   string
}

// runParRouteScenario admits the given environments in order on a fresh
// session whose HMN routes with the given worker count, and captures
// every observable: per-admission outcomes and the final residual CPU
// vector (bit-exact float64s).
func runParRouteScenario(t *testing.T, c *cluster.Cluster, envs []*virtual.Env, workers int) ([]admissionOutcome, []float64) {
	t.Helper()
	s, err := NewSession(c, cluster.VMMOverhead{}, &HMN{RouteWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]admissionOutcome, len(envs))
	for i, env := range envs {
		m, mErr := s.Map(env)
		if mErr != nil {
			outs[i] = admissionOutcome{errText: mErr.Error()}
			continue
		}
		out := admissionOutcome{guestHost: make([]int64, len(m.GuestHost))}
		for g, node := range m.GuestHost {
			out.guestHost[g] = int64(node)
		}
		out.pathNodes = make([][]int64, len(m.LinkPath))
		for l, p := range m.LinkPath {
			ns := make([]int64, len(p.Nodes))
			for j, n := range p.Nodes {
				ns[j] = int64(n)
			}
			out.pathNodes[l] = ns
		}
		outs[i] = out
	}
	return outs, s.ResidualProc()
}

// TestQuickParallelRouteMatchesSerial is the bit-identity property of
// the parallel Networking stage: for any workload — including
// admissions that fail mid-route once earlier links have saturated the
// fabric — routing with 2 or 8 workers produces exactly the mappings,
// error messages and residual vectors the sequential stage produces.
func TestQuickParallelRouteMatchesSerial(t *testing.T) {
	prop := func(seed int64, torus bool) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
		var c *cluster.Cluster
		if torus {
			c = mustTorus(t, specs, workload.TorusRows, workload.TorusCols)
		} else {
			c = mustSwitched(t, specs)
		}

		// Three admissions: a routable environment, then two increasingly
		// bandwidth-hungry ones. Against the 1000Mbps fabric the heavy
		// links saturate trunks, so later admissions routinely fail in
		// the middle of the Networking stage — the merge-order error case
		// the property must also pin down.
		mk := func(guests int, bwMin, bwMax float64, s int64) *virtual.Env {
			p := workload.HighLevelParams(guests, 0.03)
			p.BWMin, p.BWMax = bwMin, bwMax
			return workload.GenerateEnv(p, rand.New(rand.NewSource(s)))
		}
		envs := []*virtual.Env{
			mk(120, 0.5, 2.0, seed+1),
			mk(100, 50, 220, seed+2),
			mk(100, 120, 400, seed+3),
		}

		baseOuts, baseRes := runParRouteScenario(t, c, envs, parRouteWorkerCounts[0])
		for _, workers := range parRouteWorkerCounts[1:] {
			outs, res := runParRouteScenario(t, c, envs, workers)
			if !reflect.DeepEqual(outs, baseOuts) {
				t.Logf("seed %d torus %v: outcomes diverge at %d workers", seed, torus, workers)
				return false
			}
			for i := range res {
				if math.Float64bits(res[i]) != math.Float64bits(baseRes[i]) {
					t.Logf("seed %d torus %v: residual[%d] %v != %v at %d workers",
						seed, torus, i, res[i], baseRes[i], workers)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRouteErrorsMidStage pins the failure semantics down on a
// deterministic instance: an environment whose aggregate demand cannot
// fit the switched fabric must fail with the identical ErrNoPath text —
// naming the same link — at every worker count, leaving the residuals
// untouched.
func TestParallelRouteErrorsMidStage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c := mustSwitched(t, specs)

	p := workload.HighLevelParams(140, 0.04)
	p.BWMin, p.BWMax = 150, 500 // far beyond what 1000Mbps trunks can carry
	env := workload.GenerateEnv(p, rand.New(rand.NewSource(11)))

	var wantErr string
	var wantRes []float64
	for i, workers := range parRouteWorkerCounts {
		s, err := NewSession(c, cluster.VMMOverhead{}, &HMN{RouteWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		before := s.ResidualProc()
		_, mErr := s.Map(env)
		if mErr == nil {
			t.Fatalf("workers=%d: expected the oversubscribed environment to fail", workers)
		}
		after := s.ResidualProc()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("workers=%d: failed admission changed residuals", workers)
		}
		if i == 0 {
			wantErr, wantRes = mErr.Error(), after
			continue
		}
		if mErr.Error() != wantErr {
			t.Fatalf("workers=%d: error %q != sequential %q", workers, mErr, wantErr)
		}
		if !reflect.DeepEqual(after, wantRes) {
			t.Fatalf("workers=%d: residuals diverge from sequential", workers)
		}
	}
}
