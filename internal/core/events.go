package core

import (
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// This file is the session's durability boundary: every state-changing
// commit emits exactly one Event, in commit order, while the session
// lock is held. A subscriber (the hmnd WAL, internal/wal) serializes the
// events into an operation log; replaying them in the same order against
// the same starting state reconstructs the ledger bit-for-bit, because
// all commits funnel through the same canonical application path
// (cluster.Txn for admissions, per-guest/per-link releases for
// teardowns).
//
// Events carry live pointers (*virtual.Env, *mapping.Mapping). The hook
// runs synchronously under the session mutex, so it must not call back
// into the session; it should serialize (or enqueue) and return.

// Event is one committed session operation. Exactly one of the payload
// fields is set, per Type.
type Event struct {
	// Index is the session's operation index: a per-session counter
	// incremented once per emitted event, under the lock, starting at 1.
	// Snapshots record the counter's value; replay skips events at or
	// below it.
	Index uint64
	// Type discriminates the payload.
	Type EventType

	// Admit is set for EventAdmit.
	Admit *AdmitInfo
	// Batch is set for EventBatch: the admissions one MapBatch round
	// committed, in commit order, as a single atomic entry.
	Batch []AdmitInfo
	// ReleaseSeq is set for EventRelease: the admission sequence number
	// of the released environment.
	ReleaseSeq uint64
	// Fail is set for EventFail.
	Fail *FailInfo
	// Restore is set for EventRestore.
	Restore *RestoreInfo
	// Migrate is set for EventMigrate.
	Migrate *MigrateInfo
}

// EventType enumerates the session operations the hook observes.
type EventType int

const (
	// EventAdmit is one environment admitted by Map.
	EventAdmit EventType = iota
	// EventBatch is one MapBatch round: several admissions committed
	// under a single lock acquisition, logged as one atomic entry.
	EventBatch
	// EventRelease is one environment released.
	EventRelease
	// EventFail is a host failure or link cut, together with the
	// evictions it caused and the repair outcomes (when the failure ran
	// through FailHostAndRepair / FailLinkAndRepair).
	EventFail
	// EventRestore is a host or link readmission.
	EventRestore
	// EventMigrate is one committed rebalance plan: one or more guests
	// relocated atomically by MigrateGuests, with their environments'
	// mappings replaced in place (same seq, same tag).
	EventMigrate
)

// String names the event type for logs and the hmnwal inspector.
func (t EventType) String() string {
	switch t {
	case EventAdmit:
		return "admit"
	case EventBatch:
		return "batch"
	case EventRelease:
		return "release"
	case EventFail:
		return "fail"
	case EventRestore:
		return "restore"
	case EventMigrate:
		return "migrate"
	default:
		return "unknown"
	}
}

// AdmitInfo describes one committed admission.
type AdmitInfo struct {
	// Seq is the admission sequence number the session assigned.
	Seq uint64
	// Tag is the caller-supplied opaque label (hmnd uses the
	// environment ID); empty for untagged admissions.
	Tag string
	// Env is the admitted environment.
	Env *virtual.Env
	// M is the committed mapping.
	M *mapping.Mapping
}

// FailInfo describes a host failure or link cut.
type FailInfo struct {
	// Kind is "host" or "link".
	Kind string
	// Target is the host node ID or the edge ID.
	Target int
	// Evicted lists the admission sequence numbers of the environments
	// the failure evicted, in admission order.
	Evicted []uint64
	// Repairs reports the repair engine's outcome per evicted
	// environment, in the same order as Evicted; nil when the failure
	// ran without the repair engine (plain FailHost/FailLink).
	Repairs []RepairInfo
}

// RepairInfo is the fate of one evicted environment.
type RepairInfo struct {
	// OldSeq is the admission sequence number of the evicted mapping.
	OldSeq uint64
	// Outcome classifies the repair.
	Outcome RepairOutcome
	// NewSeq is the sequence number of the replacement mapping; 0 when
	// unrecoverable.
	NewSeq uint64
	// Tag is the caller tag the replacement inherited from the evicted
	// admission.
	Tag string
	// M is the replacement mapping; nil when unrecoverable.
	M *mapping.Mapping
}

// MigrateInfo describes one committed migrate plan: the guest-level
// moves and, per touched environment, the replacement mapping that now
// carries the environment under its original admission seq and tag.
type MigrateInfo struct {
	// Moves lists the guest relocations, in the canonical commit order
	// (environments by ascending seq, guests ascending within each).
	Moves []GuestMove
	// Envs holds one entry per touched environment, ascending by seq.
	Envs []MigrateEnvInfo
	// Delta is the Eq. (10) objective change the commit realized
	// (negative: the plan improved load balance).
	Delta float64
}

// MigrateEnvInfo is one environment whose mapping a migrate replaced.
type MigrateEnvInfo struct {
	// Seq is the environment's admission sequence number, unchanged by
	// the migration.
	Seq uint64
	// Tag is the caller tag, unchanged by the migration.
	Tag string
	// Env is the environment, unchanged by the migration.
	Env *virtual.Env
	// M is the replacement mapping now registered under Seq.
	M *mapping.Mapping
}

// RestoreInfo describes a host or link readmission.
type RestoreInfo struct {
	// Kind is "host" or "link".
	Kind string
	// Target is the host node ID or the edge ID.
	Target int
}

// SetCommitHook installs fn to observe every committed operation, in
// commit order, called while the session lock is held. Passing nil
// detaches. At most one hook is active. The hook must not call back into
// the session (it would deadlock); hmnd's hook appends a WAL record and
// returns, leaving the fsync to the ack path.
//
// The hook should be attached before the session serves traffic (hmnd
// attaches it right after NewSession / RestoreSession): events are not
// buffered, and the per-session operation index advances whether or not
// a hook is listening.
func (s *Session) SetCommitHook(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = fn
}

// OpCount returns the session's operation index: how many events the
// session has emitted (or would have emitted) so far.
func (s *Session) OpCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opCount
}

// emitLocked stamps ev with the next operation index and delivers it to
// the hook, if any. The index advances even without a hook so a
// snapshot's operation boundary is meaningful whether durability was
// enabled from the start or attached later. Callers hold s.mu.
//
//hmn:locked mu
func (s *Session) emitLocked(ev Event) {
	s.opCount++
	if s.hook != nil {
		ev.Index = s.opCount
		s.hook(ev)
	}
}
