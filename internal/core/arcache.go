package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// arCache is a session-wide cache of the Networking stage's Dijkstra
// latency tables (the ar[] arrays of Algorithm 1), keyed by destination
// host. A table is a pure function of the routable topology — the
// physical graph minus the currently cut links — so entries stay valid
// across admissions and are invalidated wholesale whenever the ledger's
// topology generation moves (FailLink/RestoreLink bump it via
// CutEdge/RestoreEdge). With the cache warm, precomputing the ar[]
// tables — the cost the paper's §5.2 identifies as dominating mapping
// time — becomes a map lookup instead of a per-admission Dijkstra sweep.
//
// The cache is safe for concurrent use by optimistic admissions running
// on snapshots of different ages. Staleness is harmless by construction:
// a snapshot's generation either matches the cache (tables are exact for
// that snapshot's topology) or it doesn't (the snapshot computes its own
// tables and store discards writes from superseded generations).
type arCache struct {
	mu  sync.Mutex
	gen uint64                     //hmn:guardedby mu
	tab map[graph.NodeID][]float64 //hmn:guardedby mu

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newARCache() *arCache {
	return &arCache{tab: make(map[graph.NodeID][]float64)}
}

// lookup returns the cached table towards dest for topology generation
// gen, or nil when the cache holds a different generation or has no
// entry. Callers must not mutate the returned slice.
func (c *arCache) lookup(gen uint64, dest graph.NodeID) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return nil
	}
	return c.tab[dest]
}

// store records the table towards dest for generation gen. A write from
// a superseded generation is dropped; a write from a newer generation
// flushes every older entry first, so the cache only ever mixes tables
// from a single topology.
func (c *arCache) store(gen uint64, dest graph.NodeID, table []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen < c.gen {
		return
	}
	if gen > c.gen {
		c.gen = gen
		c.tab = make(map[graph.NodeID][]float64)
	}
	c.tab[dest] = table
}
