package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// arCache is a session-wide cache of the Networking stage's Dijkstra
// latency tables (the ar[] arrays of Algorithm 1), keyed by destination
// host. A table is a pure function of the routable topology — the
// physical graph minus the currently cut links — so entries stay valid
// across admissions and are invalidated wholesale whenever the ledger's
// topology generation moves (FailLink/RestoreLink bump it via
// CutEdge/RestoreEdge). With the cache warm, precomputing the ar[]
// tables — the cost the paper's §5.2 identifies as dominating mapping
// time — becomes a map lookup instead of a per-admission Dijkstra sweep.
//
// The cache is safe for concurrent use by optimistic admissions running
// on snapshots of different ages. Staleness is harmless by construction:
// a snapshot's generation either matches the cache (tables are exact for
// that snapshot's topology) or it doesn't (the snapshot computes its own
// tables and store discards writes from superseded generations).
type arCache struct {
	mu  sync.Mutex
	gen uint64                     //hmn:guardedby mu
	tab map[graph.NodeID][]float64 //hmn:guardedby mu
	// pristine holds the generation-0 tables. Generation 0 canonically
	// identifies the cut-free topology (Ledger.TopoGen), which never
	// changes, so these tables stay valid forever — across failure
	// epochs in particular. Keeping them out of tab means a
	// FailLink/RestoreLink round-trip returns to a warm cache instead of
	// re-running every Dijkstra sweep.
	pristine map[graph.NodeID][]float64 //hmn:guardedby mu

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newARCache() *arCache {
	return &arCache{
		tab:      make(map[graph.NodeID][]float64),
		pristine: make(map[graph.NodeID][]float64),
	}
}

// lookup returns the cached table towards dest for topology generation
// gen, or nil when the cache holds a different generation or has no
// entry. Callers must not mutate the returned slice.
func (c *arCache) lookup(gen uint64, dest graph.NodeID) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen == 0 {
		return c.pristine[dest]
	}
	if c.gen != gen {
		return nil
	}
	return c.tab[dest]
}

// store records the table towards dest for generation gen. Generation-0
// tables are kept permanently (see pristine). Nonzero generations are
// monotonic — each new cut set gets a fresh one — so a write from a
// superseded generation is dropped and a write from a newer generation
// flushes every older entry first; the cache only ever mixes tables
// from a single cut topology.
func (c *arCache) store(gen uint64, dest graph.NodeID, table []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen == 0 {
		c.pristine[dest] = table
		return
	}
	if gen < c.gen {
		return
	}
	if gen > c.gen {
		c.gen = gen
		c.tab = make(map[graph.NodeID][]float64)
	}
	c.tab[dest] = table
}
