package core

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// Consolidator is the paper's §6 future-work variant of HMN: "one could
// be interested in a mapping whose goal is to minimize the amount of
// hosts used in each emulation". It reuses HMN's Hosting and Networking
// stages but replaces the Migration stage with a consolidation stage that
// empties lightly used hosts by best-fit repacking of their guests, so an
// emulator can power the freed hosts down or hand them to another tester.
//
// All hard constraints of §3.2 still hold; only the optimisation goal
// changes. The zero value is a valid configuration.
type Consolidator struct {
	// Overhead is deducted from every host before mapping (§3.1).
	Overhead cluster.VMMOverhead
	// AStar tunes the Networking stage's A*Prune search.
	AStar graph.AStarPruneOptions
	// MaxPasses caps consolidation sweeps; 0 means run until no host can
	// be emptied.
	MaxPasses int
	// RouteWorkers > 1 parallelises the Networking stage, bit-identically
	// (see HMN.RouteWorkers).
	RouteWorkers int
}

// Name implements Mapper.
func (x *Consolidator) Name() string { return "HMN-C" }

// Map places the guests with HMN's Hosting stage, consolidates them onto
// as few hosts as possible, and routes the virtual links with the
// Networking stage.
func (x *Consolidator) Map(c *cluster.Cluster, v *virtual.Env) (*mapping.Mapping, error) {
	led, err := cluster.NewLedger(c, x.Overhead)
	if err != nil {
		return nil, fmt.Errorf("HMN-C: %w", err)
	}
	m := mapping.New(c, v)
	hi := newHostIndex(led, true)
	defer led.SetProcHook(nil)
	if err := hostingIndexed(led, v, m.GuestHost, hi); err != nil {
		return nil, fmt.Errorf("HMN-C hosting stage: %w", err)
	}
	consolidateIndexed(led, v, m.GuestHost, x.MaxPasses, hi)
	if err := network(led, v, m.GuestHost, m.LinkPath, OrderDescendingBW, x.AStar, nil, nil, x.RouteWorkers, nil); err != nil {
		return nil, fmt.Errorf("HMN-C networking stage: %w", err)
	}
	return m, nil
}

// consolidate empties hosts one at a time: it repeatedly selects the
// non-empty host with the fewest guests and tries to re-place every one
// of its guests onto other already-used hosts, best-fit (tightest
// remaining memory first) to preserve packing headroom. A host is only
// emptied atomically — if any of its guests fits nowhere else, the host
// keeps all of them. The sweep repeats until no host can be emptied (or
// maxPasses is hit). Returns the number of hosts emptied.
func consolidate(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, maxPasses int) int {
	return consolidateIndexed(led, v, assign, maxPasses, nil)
}

// consolidateIndexed is consolidate reusing the Hosting stage's live
// host index, when one is attached: the ledger hook keeps it consistent
// through every repack move, and receiver scans walk its deterministic
// slice instead of ranging a map. hi may be nil (standalone callers).
func consolidateIndexed(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, maxPasses int, hi *hostIndex) int {
	c := led.Cluster()
	onHost := make(map[graph.NodeID][]virtual.GuestID)
	for g, node := range assign {
		onHost[node] = append(onHost[node], virtual.GuestID(g))
	}

	emptied := 0
	passes := 0
	for {
		passes++
		if maxPasses > 0 && passes > maxPasses {
			return emptied
		}

		// Candidate donors: non-empty hosts, fewest guests first (ties by
		// node ID for determinism).
		var donors []graph.NodeID
		for node, gs := range onHost {
			if len(gs) > 0 {
				donors = append(donors, node)
			}
		}
		sort.Slice(donors, func(i, j int) bool {
			a, b := len(onHost[donors[i]]), len(onHost[donors[j]])
			if a != b {
				return a < b
			}
			return donors[i] < donors[j]
		})

		movedAny := false
		for _, donor := range donors {
			if tryEmptyHost(led, v, assign, onHost, donor, c, hi) {
				emptied++
				movedAny = true
				break // donor set changed; re-rank
			}
		}
		if !movedAny {
			return emptied
		}
	}
}

// tryEmptyHost attempts to move every guest off donor onto other
// non-empty hosts. The relocation is atomic: on any failure all tentative
// moves are rolled back. With a live host index the receiver scan walks
// its slice; the best-fit winner is identical either way because the
// (slack, node) selection key is a total order.
func tryEmptyHost(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, onHost map[graph.NodeID][]virtual.GuestID, donor graph.NodeID, c *cluster.Cluster, hi *hostIndex) bool {
	guests := append([]virtual.GuestID(nil), onHost[donor]...)
	// Biggest guests first: the standard best-fit-decreasing order.
	sort.Slice(guests, func(i, j int) bool {
		a, b := v.Guest(guests[i]), v.Guest(guests[j])
		if a.Mem != b.Mem {
			return a.Mem > b.Mem
		}
		return guests[i] < guests[j]
	})

	type move struct {
		g    virtual.GuestID
		dest graph.NodeID
	}
	var moves []move
	rollback := func() {
		for _, mv := range moves {
			guest := v.Guest(mv.g)
			led.ReleaseGuest(mv.dest, guest.Proc, guest.Mem, guest.Stor)
			mustReserve(led, donor, guest)
		}
	}

	for _, gid := range guests {
		guest := v.Guest(gid)
		// Receivers: other non-empty hosts, tightest fitting memory
		// first (best fit).
		consider := func(node graph.NodeID, best graph.NodeID, bestSlack int64) (graph.NodeID, int64) {
			if node == donor || len(onHost[node]) == 0 {
				return best, bestSlack
			}
			if !led.Fits(node, guest.Mem, guest.Stor) {
				return best, bestSlack
			}
			slack := led.ResidualMem(node) - guest.Mem
			if best == -1 || slack < bestSlack || (slack == bestSlack && node < best) {
				return node, slack
			}
			return best, bestSlack
		}
		var best graph.NodeID = -1
		var bestSlack int64
		if hi != nil {
			for _, node := range hi.order {
				best, bestSlack = consider(node, best, bestSlack)
			}
		} else {
			for node := range onHost {
				best, bestSlack = consider(node, best, bestSlack)
			}
		}
		if best == -1 {
			rollback()
			return false
		}
		led.ReleaseGuest(donor, guest.Proc, guest.Mem, guest.Stor)
		if err := led.ReserveGuest(best, guest.Proc, guest.Mem, guest.Stor); err != nil {
			mustReserve(led, donor, guest)
			rollback()
			return false
		}
		moves = append(moves, move{gid, best})
	}

	// Commit.
	for _, mv := range moves {
		assign[mv.g] = mv.dest
		onHost[mv.dest] = append(onHost[mv.dest], mv.g)
	}
	onHost[donor] = onHost[donor][:0]
	_ = c
	return true
}

// HostsUsed counts the hosts carrying at least one guest under assign.
func HostsUsed(assign []graph.NodeID) int {
	used := map[graph.NodeID]bool{}
	for _, node := range assign {
		if node != mapping.Unassigned {
			used[node] = true
		}
	}
	return len(used)
}

var _ Mapper = (*Consolidator)(nil)
