package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// Session manages a cluster shared by several emulation experiments over
// time: virtual environments are mapped incrementally against the
// residual resources left by the environments already deployed, and
// releasing an environment returns its hosts' memory, storage and CPU
// and its paths' bandwidth to the pool.
//
// The paper assumes "the entire cluster is available for a single tester
// per time" (§3.2); a session generalises that to the multi-tester
// testbed its §6 envisions (and to the HMN-C consolidation use case,
// where freed hosts host the next experiment). Each environment is still
// mapped by a plain Mapper — HMN by default — against a ledger primed
// with the current residuals.
//
// A Session is safe for concurrent use. Map admits optimistically: it
// clones the residual state under a brief lock, runs the full HMN
// pipeline on the private snapshot with no lock held, then re-acquires
// the lock and either swaps the snapshot in (nothing changed meanwhile)
// or validates every reservation against the live residuals and commits
// them atomically. A bounded number of conflicts falls back to the fully
// serialized path, so contention can cost retries but never an admission
// that serial execution would have accepted.
type Session struct {
	mu sync.Mutex
	// c is the immutable cluster, readable without the lock; s.led is
	// guarded state and must not be touched off-lock.
	c        *cluster.Cluster
	led      *cluster.Ledger //hmn:guardedby mu
	mapper   sessionMapper
	overhead cluster.VMMOverhead
	// active maps each deployed environment to its admission sequence
	// number and caller tag. The sequence is the session's only ordering
	// authority: eviction and repair process environments oldest-first,
	// so failure handling is deterministic (the repo-wide rule that all
	// randomness flows through explicit seeds extends to iteration
	// order). The tag is an opaque caller label (hmnd's environment ID)
	// that rides the commit events and snapshots so a recovered daemon
	// can re-bind its HTTP identifiers; repairs carry it over.
	active  map[*mapping.Mapping]activeEntry //hmn:guardedby mu
	nextSeq uint64                           //hmn:guardedby mu
	// version counts committed state changes (admissions, releases,
	// failures, restorations). An optimistic attempt records it at
	// snapshot time; an unchanged version at commit time proves the
	// snapshot is still the live state.
	version uint64 //hmn:guardedby mu
	// optimisticRetries bounds the optimistic attempts before Map falls
	// back to mapping under the lock; 0 forces the serialized path.
	optimisticRetries int
	// ar caches Dijkstra latency tables across admissions; see arCache.
	ar *arCache
	// snapFree recycles attempt snapshots: each is a journal-enabled
	// copy-on-write ledger (cluster.Ledger.Snapshot) that SyncFrom
	// refreshes by replaying only the rows touched since it was last in
	// sync, instead of a full O(hosts+edges) clone per admission.
	snapFree []*cluster.Ledger //hmn:guardedby mu
	// txn is the reusable admission transaction every commit funnels
	// through; epoch-stamped reset makes reuse O(touched), not O(state).
	txn *cluster.Txn //hmn:guardedby mu

	// hook observes every committed operation in commit order, under the
	// lock; see SetCommitHook. opCount is the per-session operation
	// index the events are stamped with.
	hook    func(Event) //hmn:guardedby mu
	opCount uint64      //hmn:guardedby mu

	optimisticCommits atomic.Uint64
	conflicts         atomic.Uint64
	fallbacks         atomic.Uint64
}

// activeEntry is the session-side bookkeeping of one deployed
// environment: its admission sequence number and the caller's tag.
type activeEntry struct {
	seq uint64
	tag string
}

// defaultOptimisticRetries is how many optimistic attempts Map makes
// before serializing. Conflicts need the live residuals to move during
// the few milliseconds a mapping takes, so first retries usually land;
// by the third failure the session is contended enough that the
// serialized path is cheaper than another wasted pipeline run.
const defaultOptimisticRetries = 3

// sessionMapper is the subset of mappers a session can drive
// incrementally: they must accept a pre-primed ledger. HMN and its
// variants qualify; the retrying baselines do not (they rebuild ledgers
// internally).
type sessionMapper interface {
	// arc is the session's Dijkstra-table cache; one-shot callers pass
	// nil and recompute per mapping. ms carries the attempt's reusable
	// buffers (may be nil, which allocates per call).
	mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping, arc *arCache, ms *mapScratch) error
	// rerouteOnLedger re-runs only the Networking stage for the named
	// virtual links, keeping guest placements fixed — the repair
	// engine's cheap path after a link failure.
	rerouteOnLedger(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int, arc *arCache, ms *mapScratch) error
}

// mapOnLedger runs the three HMN stages against an existing ledger. One
// host index serves Hosting and Migration; its ledger hook is detached
// before returning so the ledger outlives the attempt hook-free.
func (h *HMN) mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping, arc *arCache, ms *mapScratch) error {
	hi := newHostIndexIn(led, !h.DisableHostResort, ms)
	defer led.SetProcHook(nil)
	if err := hostingIndexedIn(led, v, m.GuestHost, hi, ms); err != nil {
		return fmt.Errorf("HMN hosting stage: %w", err)
	}
	if !h.DisableMigration {
		migrateScoped(led, v, m.GuestHost, h.Metric, h.MaxMigrations, h.Scope, hi, h.ExactObjective, nil, ms)
	}
	if err := network(led, v, m.GuestHost, m.LinkPath, h.NetworkOrder, h.AStar, h.Rand, arc, h.RouteWorkers, ms); err != nil {
		return fmt.Errorf("HMN networking stage: %w", err)
	}
	return nil
}

// rerouteOnLedger re-routes a link subset with HMN's Networking options.
func (h *HMN) rerouteOnLedger(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int, arc *arCache, ms *mapScratch) error {
	return routeLinks(led, v, assign, paths, linkIDs, h.NetworkOrder, h.AStar, h.Rand, arc, h.RouteWorkers, ms)
}

// mapOnLedger runs Hosting, consolidation and Networking against an
// existing ledger.
func (x *Consolidator) mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping, arc *arCache, ms *mapScratch) error {
	hi := newHostIndexIn(led, true, ms)
	defer led.SetProcHook(nil)
	if err := hostingIndexedIn(led, v, m.GuestHost, hi, ms); err != nil {
		return fmt.Errorf("HMN-C hosting stage: %w", err)
	}
	consolidateIndexed(led, v, m.GuestHost, x.MaxPasses, hi)
	if err := network(led, v, m.GuestHost, m.LinkPath, OrderDescendingBW, x.AStar, nil, arc, x.RouteWorkers, ms); err != nil {
		return fmt.Errorf("HMN-C networking stage: %w", err)
	}
	return nil
}

// rerouteOnLedger re-routes a link subset with HMN-C's Networking options.
func (x *Consolidator) rerouteOnLedger(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int, arc *arCache, ms *mapScratch) error {
	return routeLinks(led, v, assign, paths, linkIDs, OrderDescendingBW, x.AStar, nil, arc, x.RouteWorkers, ms)
}

// NewSession opens a session on c with the VMM overhead deducted once.
// mapper selects the placement algorithm for every environment; nil
// means a default HMN. Only HMN and Consolidator values are accepted.
func NewSession(c *cluster.Cluster, overhead cluster.VMMOverhead, mapper Mapper) (*Session, error) {
	led, err := cluster.NewLedger(c, overhead)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	sm, err := sessionMapperFor(mapper, overhead)
	if err != nil {
		return nil, err
	}
	led.EnableJournal()
	return &Session{
		c:                 c,
		led:               led,
		mapper:            sm,
		overhead:          overhead,
		active:            make(map[*mapping.Mapping]activeEntry),
		optimisticRetries: defaultOptimisticRetries,
		ar:                newARCache(),
	}, nil
}

// MapperByName resolves the wire name of a session-capable mapper —
// "HMN" (also the default for an empty name) or "HMN-C" — shared by the
// HTTP layer and WAL recovery so a logged session reopens with exactly
// the mapper it ran with.
func MapperByName(name string, overhead cluster.VMMOverhead) (Mapper, error) {
	switch name {
	case "", "HMN":
		return &HMN{Overhead: overhead}, nil
	case "HMN-C":
		return &Consolidator{Overhead: overhead}, nil
	default:
		return nil, fmt.Errorf("unknown mapper %q (want HMN or HMN-C)", name)
	}
}

// sessionMapperFor validates that mapper can drive a session
// incrementally; nil selects the default HMN.
func sessionMapperFor(mapper Mapper, overhead cluster.VMMOverhead) (sessionMapper, error) {
	switch m := mapper.(type) {
	case nil:
		return &HMN{Overhead: overhead}, nil
	case sessionMapper:
		return m, nil
	default:
		return nil, fmt.Errorf("session: mapper %s cannot run incrementally (needs a ledger-driven mapper such as HMN or HMN-C)", mapper.Name())
	}
}

// SetRouteWorkers sets the parallel Networking stage's worker count on
// the session's mapper (see HMN.RouteWorkers); values <= 1 keep the
// serial stage. Call it before serving admissions. Because the parallel
// stage is bit-identical to the serial one, a recovered session may
// apply a different worker count than it originally ran with — replay
// itself never runs the mapper at all.
func (s *Session) SetRouteWorkers(workers int) {
	switch m := s.mapper.(type) {
	case *HMN:
		m.RouteWorkers = workers
	case *Consolidator:
		m.RouteWorkers = workers
	}
}

// Cluster returns the session's cluster.
func (s *Session) Cluster() *cluster.Cluster { return s.c }

// Active returns the number of environments currently deployed.
func (s *Session) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// ResidualProc returns a snapshot of the residual CPU per host, in host
// declaration order — the live rproc vector across all deployed
// environments.
func (s *Session) ResidualProc() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.led.ResidualProcAll()
}

// ObjectiveStdDev returns the live Eq. (10) objective — the population
// standard deviation of residual CPU across hosts — from the ledger's
// incremental Σ/Σ² accumulators, in O(1).
func (s *Session) ObjectiveStdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.led.ObjectiveStdDev()
}

// AdmitStats reports how one Map call was admitted.
type AdmitStats struct {
	// Conflicts is how many optimistic attempts lost their validation
	// race and were retried.
	Conflicts int
	// Fallback reports that the admission exhausted its optimistic
	// retries and ran fully serialized under the session lock.
	Fallback bool
	// CommitSeconds is the total time spent holding the session lock —
	// the snapshot clone plus every validate-and-commit (or, on the
	// fallback, the whole serialized mapping).
	CommitSeconds float64
}

// Map deploys v against the session's current residual resources. On
// failure the residuals are left exactly as they were (every attempt
// runs on a private snapshot and commits atomically).
func (s *Session) Map(v *virtual.Env) (*mapping.Mapping, error) {
	m, _, err := s.MapTagged(v, "")
	return m, err
}

// MapWithStats is Map, also reporting how the admission went: how many
// optimistic attempts conflicted, whether the serialized fallback ran,
// and the time spent holding the session lock. The mapping result is
// identical either way.
func (s *Session) MapWithStats(v *virtual.Env) (*mapping.Mapping, AdmitStats, error) {
	return s.MapTagged(v, "")
}

// snapshotLocked hands out an attempt snapshot of the live ledger:
// a recycled one refreshed in place by the copy-on-write journal
// (SyncFrom replays only the rows committed since the snapshot was
// last in sync), or a fresh cluster.Ledger.Snapshot when the pool is
// empty. Callers hold s.mu and must return the snapshot with
// freeSnapshotLocked once the attempt is over.
//
//hmn:locked mu
//hmn:noalloc
func (s *Session) snapshotLocked() *cluster.Ledger {
	if n := len(s.snapFree); n > 0 {
		snap := s.snapFree[n-1]
		s.snapFree[n-1] = nil
		s.snapFree = s.snapFree[:n-1]
		snap.SyncFrom(s.led)
		return snap
	}
	return s.led.Snapshot()
}

// freeSnapshotLocked recycles an attempt snapshot. Callers hold s.mu
// and must not touch snap afterwards.
//
//hmn:locked mu
//hmn:noalloc
func (s *Session) freeSnapshotLocked(snap *cluster.Ledger) {
	s.snapFree = append(s.snapFree, snap) //hmn:allocok grows to the high-water snapshot count, then recycles
}

// MapTagged is MapWithStats with a caller tag attached to the admission:
// the tag rides the commit event and the session snapshot (hmnd passes
// its environment ID), and repairs carry it to replacement mappings.
//
// The admission loop itself is annotated allocation-free: the per-attempt
// allocations live in the designated constructors it calls (mapping.New,
// the scratch pools), so any new allocating construct added here is a
// hotpathalloc diagnostic.
//
//hmn:noalloc
func (s *Session) MapTagged(v *virtual.Env, tag string) (*mapping.Mapping, AdmitStats, error) {
	var st AdmitStats
	for try := 0; try < s.optimisticRetries; try++ {
		start := time.Now() //hmn:wallclock
		s.mu.Lock()
		snap := s.snapshotLocked()
		ver := s.version
		s.mu.Unlock()
		st.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock

		// The expensive part — hosting, migration and every A*Prune
		// search — runs on the private snapshot with no lock held.
		m := mapping.New(s.c, v)
		ms := getMapScratch()
		mapErr := s.mapper.mapOnLedger(snap, v, m, s.ar, ms)
		putMapScratch(ms)

		start = time.Now() //hmn:wallclock
		s.mu.Lock()
		s.freeSnapshotLocked(snap)
		if s.version == ver {
			// Nothing committed since the snapshot was taken, so it IS
			// the live state: committing the mapping's net effect is
			// the serialized semantics, including this attempt's error.
			if mapErr != nil {
				s.mu.Unlock()
				return nil, st, mapErr
			}
			if seq, err := s.commitTxnLocked(v, m, tag); err == nil {
				s.emitAdmitLocked(seq, tag, v, m)
				s.mu.Unlock()
				s.optimisticCommits.Add(1)
				st.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock
				return m, st, nil
			}
			// A commit against the unchanged snapshot state cannot be
			// rejected (the attempt reserved the same demands); treat a
			// refusal as a conflict and retry defensively.
		} else if mapErr == nil {
			// The state moved while we mapped. The snapshot's residuals
			// are stale, but the mapping is still admissible if its net
			// demands — final placements and path bandwidths — fit the
			// live residuals; Commit validates exactly that and applies
			// atomically, or rejects without touching the ledger.
			if seq, err := s.commitTxnLocked(v, m, tag); err == nil {
				s.emitAdmitLocked(seq, tag, v, m)
				s.mu.Unlock()
				s.optimisticCommits.Add(1)
				st.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock
				return m, st, nil
			}
		}
		// A conflicting commit, or a mapping failure on residuals that
		// have since changed (the failure may be stale): retry against a
		// fresh snapshot.
		s.mu.Unlock()
		st.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock
		st.Conflicts++
		s.conflicts.Add(1)
	}

	// Retries exhausted (or disabled): serialize. Holding the lock for
	// the whole mapping guarantees admission whenever the serial path
	// would admit — contention can never reject an environment the
	// residuals can hold.
	st.Fallback = true
	s.fallbacks.Add(1)
	start := time.Now() //hmn:wallclock
	s.mu.Lock()
	attempt := s.snapshotLocked()
	m := mapping.New(s.c, v)
	ms := getMapScratch()
	err := s.mapper.mapOnLedger(attempt, v, m, s.ar, ms)
	putMapScratch(ms)
	s.freeSnapshotLocked(attempt)
	if err == nil {
		var seq uint64
		if seq, err = s.commitTxnLocked(v, m, tag); err == nil {
			s.emitAdmitLocked(seq, tag, v, m)
		}
	}
	s.mu.Unlock()
	st.CommitSeconds += time.Since(start).Seconds() //hmn:wallclock
	if err != nil {
		return nil, st, err
	}
	return m, st, nil
}

// admissionTxn collapses a finished mapping into its net effect on the
// ledger: each guest's demands on its final host and each path's
// bandwidth. Intermediate moves the Migration stage made cancel out by
// construction, so validating the transaction is validating Eq. (2),
// (3) and (9) for the mapping as committed.
func admissionTxn(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) *cluster.Txn {
	txn := led.NewTxn()
	fillAdmissionTxn(txn, v, m)
	return txn
}

// fillAdmissionTxn accumulates m's net effect into txn, which must be
// fresh or Reset. Split from admissionTxn so the session's commit funnel
// can reuse one transaction across admissions.
//
//hmn:noalloc
func fillAdmissionTxn(txn *cluster.Txn, v *virtual.Env, m *mapping.Mapping) {
	for g, node := range m.GuestHost {
		guest := v.Guest(virtual.GuestID(g))
		txn.AddGuest(node, guest.Proc, guest.Mem, guest.Stor)
	}
	for l, p := range m.LinkPath {
		txn.AddPath(p, v.Link(l).BW)
	}
}

// commitTxnLocked is the single canonical commit funnel: it collapses m
// into its net transaction, validates it against the live residuals and
// applies it atomically (cluster.Ledger.Commit applies per-host
// aggregates in ascending host order, then per-edge aggregates in
// ascending edge order), then registers m as active under the next
// sequence number. Every admission — optimistic, serialized, batched or
// repair — commits through here, so the live ledger evolves as a
// deterministic sequence of canonical applications keyed by the
// admission sequence; replaying the same sequence (internal/wal)
// reproduces the residual vectors bit-for-bit. Callers hold s.mu.
//
//hmn:locked mu
//hmn:noalloc
func (s *Session) commitTxnLocked(v *virtual.Env, m *mapping.Mapping, tag string) (uint64, error) {
	if s.txn == nil {
		s.txn = s.led.NewTxn()
	}
	s.txn.Reset()
	fillAdmissionTxn(s.txn, v, m)
	if err := s.led.Commit(s.txn); err != nil {
		return 0, err
	}
	return s.admitLocked(m, tag), nil
}

// emitAdmitLocked emits an EventAdmit, building the event only when a
// hook is listening: the AdmitInfo allocation otherwise survives every
// steady-state admission for nothing. The operation index advances
// either way (see emitLocked). Callers hold s.mu.
//
//hmn:locked mu
//hmn:noalloc
func (s *Session) emitAdmitLocked(seq uint64, tag string, v *virtual.Env, m *mapping.Mapping) {
	if s.hook == nil {
		s.opCount++
		return
	}
	s.emitLocked(Event{Type: EventAdmit, Admit: &AdmitInfo{Seq: seq, Tag: tag, Env: v, M: m}}) //hmn:allocok built only when a hook is listening; the early return above covers steady state
}

// admitLocked registers m as active and bumps the version. Callers hold
// s.mu and have already applied m's reservations to s.led.
//
//hmn:locked mu
//hmn:noalloc
func (s *Session) admitLocked(m *mapping.Mapping, tag string) uint64 {
	s.version++
	s.nextSeq++
	s.active[m] = activeEntry{seq: s.nextSeq, tag: tag}
	return s.nextSeq
}

// SessionStats are monotonic totals over a session's lifetime.
type SessionStats struct {
	// OptimisticCommits counts admissions committed without holding the
	// lock during mapping.
	OptimisticCommits uint64
	// Conflicts counts optimistic attempts that lost their validation
	// race (each conflicted Map can contribute several).
	Conflicts uint64
	// Fallbacks counts admissions that ran on the serialized path.
	Fallbacks uint64
	// ARCacheHits and ARCacheMisses count Dijkstra latency-table
	// lookups served from, respectively filled into, the session cache.
	ARCacheHits   uint64
	ARCacheMisses uint64
}

// AdmissionStats returns the session's admission counters.
func (s *Session) AdmissionStats() SessionStats {
	return SessionStats{
		OptimisticCommits: s.optimisticCommits.Load(),
		Conflicts:         s.conflicts.Load(),
		Fallbacks:         s.fallbacks.Load(),
		ARCacheHits:       s.ar.hits.Load(),
		ARCacheMisses:     s.ar.misses.Load(),
	}
}

// ActiveMappings returns the currently deployed mappings in admission
// order, oldest first. Repaired environments carry fresh admission
// numbers, so the slice reflects the order the current deployments were
// committed, not the order their tenants first arrived.
func (s *Session) ActiveMappings() []*mapping.Mapping {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*mapping.Mapping, 0, len(s.active))
	for m := range s.active {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return s.active[out[i]].seq < s.active[out[j]].seq })
	return out
}

// FailedHosts returns how many hosts are currently failed (quarantined).
func (s *Session) FailedHosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.led.Cluster().Hosts() {
		if s.led.Quarantined(h.Node) {
			n++
		}
	}
	return n
}

// CutLinks returns how many physical links are currently cut.
func (s *Session) CutLinks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for e := 0; e < s.led.Cluster().Net().NumEdges(); e++ {
		if s.led.EdgeCut(e) {
			n++
		}
	}
	return n
}

// ErrUnknownTarget is returned by the failure primitives when the named
// node is not a host or the edge ID is out of range.
var ErrUnknownTarget = errors.New("core: no such host or link")

// ErrAlreadyFailed is returned by FailHost/FailLink when the target is
// already failed — failing it again would silently report zero evictions
// and hide that the operator is re-draining a dead target.
var ErrAlreadyFailed = errors.New("core: target is already failed")

// ErrNotFailed is returned by RestoreHost/RestoreLink when the target
// was never failed: an operator typo must not "restore" a healthy host
// and mask the still-failed one.
var ErrNotFailed = errors.New("core: target is not failed")

// FailHost models the failure (or administrative draining) of one host:
// no future deployment will place guests on it, and every currently
// active environment that has guests there is evicted from the session —
// its healthy-host resources and path bandwidth are returned, and the
// affected mappings are reported (in admission order, oldest first) so
// their owners can redeploy with Map or hand them to Repair. Unaffected
// environments keep running untouched.
func (s *Session) FailHost(node graph.NodeID) ([]*mapping.Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	affected, entries, err := s.failHostLocked(node)
	if err != nil {
		return nil, err
	}
	s.emitLocked(Event{Type: EventFail, Fail: &FailInfo{Kind: "host", Target: int(node), Evicted: seqsOf(entries)}})
	return affected, nil
}

//hmn:locked mu
func (s *Session) failHostLocked(node graph.NodeID) ([]*mapping.Mapping, []activeEntry, error) {
	if !s.led.Cluster().IsHost(node) {
		return nil, nil, fmt.Errorf("%w: node %d is not a host", ErrUnknownTarget, node)
	}
	if s.led.Quarantined(node) {
		return nil, nil, fmt.Errorf("%w: host %d", ErrAlreadyFailed, node)
	}
	var affected []*mapping.Mapping
	for m := range s.active {
		for _, h := range m.GuestHost {
			if h == node {
				affected = append(affected, m)
				break
			}
		}
	}
	s.sortByAdmission(affected)
	entries := s.entriesOfLocked(affected)
	// Evict before quarantining: release must restore resources on the
	// failing host too, so the ledger stays consistent if the host is
	// later readmitted.
	for _, m := range affected {
		s.releaseLocked(m)
	}
	s.led.Quarantine(node)
	s.version++
	return affected, entries, nil
}

// entriesOfLocked captures the admission entries (sequence number and
// tag) of ms, which must all be active — the fail paths call it before
// releaseLocked erases the bookkeeping, so the repair engine can carry
// tags to replacement mappings. Callers hold s.mu.
//
//hmn:locked mu
func (s *Session) entriesOfLocked(ms []*mapping.Mapping) []activeEntry {
	if len(ms) == 0 {
		return nil
	}
	entries := make([]activeEntry, len(ms))
	for i, m := range ms {
		entries[i] = s.active[m]
	}
	return entries
}

// seqsOf projects captured entries onto their sequence numbers.
func seqsOf(entries []activeEntry) []uint64 {
	if len(entries) == 0 {
		return nil
	}
	seqs := make([]uint64, len(entries))
	for i, e := range entries {
		seqs[i] = e.seq
	}
	return seqs
}

// FailLink models the failure of one physical link: no future routing
// will cross it, and every active environment whose paths use it is
// evicted (resources returned) and reported in admission order for
// redeployment. Guests are unaffected directly — only the routing
// changes — but the environment is evicted as a whole, since its
// remaining paths hold reservations sized for the old routing; Repair
// restores the placements and re-routes only the broken paths when it
// can.
func (s *Session) FailLink(edgeID int) ([]*mapping.Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	affected, entries, err := s.failLinkLocked(edgeID)
	if err != nil {
		return nil, err
	}
	s.emitLocked(Event{Type: EventFail, Fail: &FailInfo{Kind: "link", Target: edgeID, Evicted: seqsOf(entries)}})
	return affected, nil
}

//hmn:locked mu
func (s *Session) failLinkLocked(edgeID int) ([]*mapping.Mapping, []activeEntry, error) {
	if edgeID < 0 || edgeID >= s.led.Cluster().Net().NumEdges() {
		return nil, nil, fmt.Errorf("%w: edge %d out of range", ErrUnknownTarget, edgeID)
	}
	if s.led.EdgeCut(edgeID) {
		return nil, nil, fmt.Errorf("%w: edge %d", ErrAlreadyFailed, edgeID)
	}
	var affected []*mapping.Mapping
	for m := range s.active {
	scan:
		for _, p := range m.LinkPath {
			for _, eid := range p.Edges {
				if eid == edgeID {
					affected = append(affected, m)
					break scan
				}
			}
		}
	}
	s.sortByAdmission(affected)
	entries := s.entriesOfLocked(affected)
	for _, m := range affected {
		s.releaseLocked(m)
	}
	s.led.CutEdge(edgeID)
	s.version++
	return affected, entries, nil
}

// sortByAdmission orders mappings by their admission sequence number,
// oldest first. Callers hold s.mu and pass mappings still in s.active.
//
//hmn:locked mu
func (s *Session) sortByAdmission(ms []*mapping.Mapping) {
	sort.Slice(ms, func(i, j int) bool { return s.active[ms[i]].seq < s.active[ms[j]].seq })
}

// RestoreLink readmits a previously failed physical link. Restoring a
// link that is not failed returns ErrNotFailed.
func (s *Session) RestoreLink(edgeID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if edgeID < 0 || edgeID >= s.led.Cluster().Net().NumEdges() {
		return fmt.Errorf("%w: edge %d out of range", ErrUnknownTarget, edgeID)
	}
	if !s.led.EdgeCut(edgeID) {
		return fmt.Errorf("%w: edge %d", ErrNotFailed, edgeID)
	}
	s.led.RestoreEdge(edgeID)
	s.version++
	s.emitLocked(Event{Type: EventRestore, Restore: &RestoreInfo{Kind: "link", Target: edgeID}})
	return nil
}

// RestoreHost readmits a previously failed host. Restoring a host that
// is not failed returns ErrNotFailed.
func (s *Session) RestoreHost(node graph.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.led.Cluster().IsHost(node) {
		return fmt.Errorf("%w: node %d is not a host", ErrUnknownTarget, node)
	}
	if !s.led.Quarantined(node) {
		return fmt.Errorf("%w: host %d", ErrNotFailed, node)
	}
	s.led.Unquarantine(node)
	s.version++
	s.emitLocked(Event{Type: EventRestore, Restore: &RestoreInfo{Kind: "host", Target: int(node)}})
	return nil
}

// ErrNotActive is returned by Release for a mapping the session does not
// currently hold.
var ErrNotActive = errors.New("core: mapping is not active in this session")

// Release tears an environment down, returning every resource it held.
func (s *Session) Release(m *mapping.Mapping) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.active[m]
	if !ok {
		return ErrNotActive
	}
	s.releaseLocked(m)
	s.emitLocked(Event{Type: EventRelease, ReleaseSeq: entry.seq})
	return nil
}

//hmn:locked mu
func (s *Session) releaseLocked(m *mapping.Mapping) {
	for g, node := range m.GuestHost {
		guest := m.Env.Guest(virtual.GuestID(g))
		s.led.ReleaseGuest(node, guest.Proc, guest.Mem, guest.Stor)
	}
	for l, p := range m.LinkPath {
		s.led.ReleaseBandwidth(p, m.Env.Link(l).BW)
	}
	delete(s.active, m)
	s.version++
}
