package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// Session manages a cluster shared by several emulation experiments over
// time: virtual environments are mapped incrementally against the
// residual resources left by the environments already deployed, and
// releasing an environment returns its hosts' memory, storage and CPU
// and its paths' bandwidth to the pool.
//
// The paper assumes "the entire cluster is available for a single tester
// per time" (§3.2); a session generalises that to the multi-tester
// testbed its §6 envisions (and to the HMN-C consolidation use case,
// where freed hosts host the next experiment). Each environment is still
// mapped by a plain Mapper — HMN by default — against a ledger primed
// with the current residuals.
//
// A Session is safe for concurrent use; Map and Release serialise on an
// internal mutex (mapping attempts must observe consistent residuals).
type Session struct {
	mu       sync.Mutex
	led      *cluster.Ledger
	mapper   sessionMapper
	overhead cluster.VMMOverhead
	active   map[*mapping.Mapping]bool
}

// sessionMapper is the subset of mappers a session can drive
// incrementally: they must accept a pre-primed ledger. HMN and its
// variants qualify; the retrying baselines do not (they rebuild ledgers
// internally).
type sessionMapper interface {
	mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) error
}

// mapOnLedger runs the three HMN stages against an existing ledger.
func (h *HMN) mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) error {
	if err := hosting(led, v, m.GuestHost, !h.DisableHostResort); err != nil {
		return fmt.Errorf("HMN hosting stage: %w", err)
	}
	if !h.DisableMigration {
		migrateScoped(led, v, m.GuestHost, h.Metric, h.MaxMigrations, h.Scope)
	}
	if err := network(led, v, m.GuestHost, m.LinkPath, h.NetworkOrder, h.AStar, h.Rand); err != nil {
		return fmt.Errorf("HMN networking stage: %w", err)
	}
	return nil
}

// mapOnLedger runs Hosting, consolidation and Networking against an
// existing ledger.
func (x *Consolidator) mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) error {
	if err := hosting(led, v, m.GuestHost, true); err != nil {
		return fmt.Errorf("HMN-C hosting stage: %w", err)
	}
	consolidate(led, v, m.GuestHost, x.MaxPasses)
	if err := network(led, v, m.GuestHost, m.LinkPath, OrderDescendingBW, x.AStar, nil); err != nil {
		return fmt.Errorf("HMN-C networking stage: %w", err)
	}
	return nil
}

// NewSession opens a session on c with the VMM overhead deducted once.
// mapper selects the placement algorithm for every environment; nil
// means a default HMN. Only HMN and Consolidator values are accepted.
func NewSession(c *cluster.Cluster, overhead cluster.VMMOverhead, mapper Mapper) (*Session, error) {
	led, err := cluster.NewLedger(c, overhead)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	var sm sessionMapper
	switch m := mapper.(type) {
	case nil:
		sm = &HMN{Overhead: overhead}
	case sessionMapper:
		sm = m
	default:
		return nil, fmt.Errorf("session: mapper %s cannot run incrementally (needs a ledger-driven mapper such as HMN or HMN-C)", mapper.Name())
	}
	return &Session{
		led:      led,
		mapper:   sm,
		overhead: overhead,
		active:   make(map[*mapping.Mapping]bool),
	}, nil
}

// Cluster returns the session's cluster.
func (s *Session) Cluster() *cluster.Cluster { return s.led.Cluster() }

// Active returns the number of environments currently deployed.
func (s *Session) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// ResidualProc returns a snapshot of the residual CPU per host, in host
// declaration order — the live rproc vector across all deployed
// environments.
func (s *Session) ResidualProc() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.led.ResidualProcAll()
}

// Map deploys v against the session's current residual resources. On
// failure the residuals are left exactly as they were (the attempt runs
// on a clone and commits atomically).
func (s *Session) Map(v *virtual.Env) (*mapping.Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	attempt := s.led.Clone()
	m := mapping.New(s.led.Cluster(), v)
	if err := s.mapper.mapOnLedger(attempt, v, m); err != nil {
		return nil, err
	}
	s.led = attempt
	s.active[m] = true
	return m, nil
}

// FailHost models the failure (or administrative draining) of one host:
// no future deployment will place guests on it, and every currently
// active environment that has guests there is evicted from the session —
// its healthy-host resources and path bandwidth are returned, and the
// affected mappings are reported so their owners can redeploy with Map
// (which will route around the failed host). Unaffected environments
// keep running untouched.
func (s *Session) FailHost(node graph.NodeID) (affected []*mapping.Mapping, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.led.Cluster().IsHost(node) {
		return nil, fmt.Errorf("core: node %d is not a host", node)
	}
	for m := range s.active {
		uses := false
		for _, h := range m.GuestHost {
			if h == node {
				uses = true
				break
			}
		}
		if uses {
			affected = append(affected, m)
		}
	}
	// Evict before quarantining: release must restore resources on the
	// failing host too, so the ledger stays consistent if the host is
	// later readmitted.
	for _, m := range affected {
		s.releaseLocked(m)
	}
	s.led.Quarantine(node)
	sort.Slice(affected, func(i, j int) bool {
		return fmt.Sprintf("%p", affected[i]) < fmt.Sprintf("%p", affected[j])
	})
	return affected, nil
}

// FailLink models the failure of one physical link: no future routing
// will cross it, and every active environment whose paths use it is
// evicted (resources returned) and reported for redeployment. Guests are
// unaffected directly — only the routing changes — but the environment
// is remapped as a whole, since its remaining paths hold reservations
// sized for the old routing.
func (s *Session) FailLink(edgeID int) (affected []*mapping.Mapping, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if edgeID < 0 || edgeID >= s.led.Cluster().Net().NumEdges() {
		return nil, fmt.Errorf("core: edge %d out of range", edgeID)
	}
	for m := range s.active {
		uses := false
	scan:
		for _, p := range m.LinkPath {
			for _, eid := range p.Edges {
				if eid == edgeID {
					uses = true
					break scan
				}
			}
		}
		if uses {
			affected = append(affected, m)
		}
	}
	for _, m := range affected {
		s.releaseLocked(m)
	}
	s.led.CutEdge(edgeID)
	sort.Slice(affected, func(i, j int) bool {
		return fmt.Sprintf("%p", affected[i]) < fmt.Sprintf("%p", affected[j])
	})
	return affected, nil
}

// RestoreLink readmits a previously failed physical link.
func (s *Session) RestoreLink(edgeID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if edgeID < 0 || edgeID >= s.led.Cluster().Net().NumEdges() {
		return fmt.Errorf("core: edge %d out of range", edgeID)
	}
	s.led.RestoreEdge(edgeID)
	return nil
}

// RestoreHost readmits a previously failed host.
func (s *Session) RestoreHost(node graph.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.led.Cluster().IsHost(node) {
		return fmt.Errorf("core: node %d is not a host", node)
	}
	s.led.Unquarantine(node)
	return nil
}

// ErrNotActive is returned by Release for a mapping the session does not
// currently hold.
var ErrNotActive = errors.New("core: mapping is not active in this session")

// Release tears an environment down, returning every resource it held.
func (s *Session) Release(m *mapping.Mapping) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.active[m] {
		return ErrNotActive
	}
	s.releaseLocked(m)
	return nil
}

func (s *Session) releaseLocked(m *mapping.Mapping) {
	for g, node := range m.GuestHost {
		guest := m.Env.Guest(virtual.GuestID(g))
		s.led.ReleaseGuest(node, guest.Proc, guest.Mem, guest.Stor)
	}
	for l, p := range m.LinkPath {
		s.led.ReleaseBandwidth(p, m.Env.Link(l).BW)
	}
	delete(s.active, m)
}
