package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// Session manages a cluster shared by several emulation experiments over
// time: virtual environments are mapped incrementally against the
// residual resources left by the environments already deployed, and
// releasing an environment returns its hosts' memory, storage and CPU
// and its paths' bandwidth to the pool.
//
// The paper assumes "the entire cluster is available for a single tester
// per time" (§3.2); a session generalises that to the multi-tester
// testbed its §6 envisions (and to the HMN-C consolidation use case,
// where freed hosts host the next experiment). Each environment is still
// mapped by a plain Mapper — HMN by default — against a ledger primed
// with the current residuals.
//
// A Session is safe for concurrent use; Map and Release serialise on an
// internal mutex (mapping attempts must observe consistent residuals).
type Session struct {
	mu       sync.Mutex
	led      *cluster.Ledger
	mapper   sessionMapper
	overhead cluster.VMMOverhead
	// active maps each deployed environment to its admission sequence
	// number. The sequence is the session's only ordering authority:
	// eviction and repair process environments oldest-first, so failure
	// handling is deterministic (the repo-wide rule that all randomness
	// flows through explicit seeds extends to iteration order).
	active  map[*mapping.Mapping]uint64
	nextSeq uint64
}

// sessionMapper is the subset of mappers a session can drive
// incrementally: they must accept a pre-primed ledger. HMN and its
// variants qualify; the retrying baselines do not (they rebuild ledgers
// internally).
type sessionMapper interface {
	mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) error
	// rerouteOnLedger re-runs only the Networking stage for the named
	// virtual links, keeping guest placements fixed — the repair
	// engine's cheap path after a link failure.
	rerouteOnLedger(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int) error
}

// mapOnLedger runs the three HMN stages against an existing ledger.
func (h *HMN) mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) error {
	if err := hosting(led, v, m.GuestHost, !h.DisableHostResort); err != nil {
		return fmt.Errorf("HMN hosting stage: %w", err)
	}
	if !h.DisableMigration {
		migrateScoped(led, v, m.GuestHost, h.Metric, h.MaxMigrations, h.Scope)
	}
	if err := network(led, v, m.GuestHost, m.LinkPath, h.NetworkOrder, h.AStar, h.Rand); err != nil {
		return fmt.Errorf("HMN networking stage: %w", err)
	}
	return nil
}

// rerouteOnLedger re-routes a link subset with HMN's Networking options.
func (h *HMN) rerouteOnLedger(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int) error {
	return routeLinks(led, v, assign, paths, linkIDs, h.NetworkOrder, h.AStar, h.Rand)
}

// mapOnLedger runs Hosting, consolidation and Networking against an
// existing ledger.
func (x *Consolidator) mapOnLedger(led *cluster.Ledger, v *virtual.Env, m *mapping.Mapping) error {
	if err := hosting(led, v, m.GuestHost, true); err != nil {
		return fmt.Errorf("HMN-C hosting stage: %w", err)
	}
	consolidate(led, v, m.GuestHost, x.MaxPasses)
	if err := network(led, v, m.GuestHost, m.LinkPath, OrderDescendingBW, x.AStar, nil); err != nil {
		return fmt.Errorf("HMN-C networking stage: %w", err)
	}
	return nil
}

// rerouteOnLedger re-routes a link subset with HMN-C's Networking options.
func (x *Consolidator) rerouteOnLedger(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int) error {
	return routeLinks(led, v, assign, paths, linkIDs, OrderDescendingBW, x.AStar, nil)
}

// NewSession opens a session on c with the VMM overhead deducted once.
// mapper selects the placement algorithm for every environment; nil
// means a default HMN. Only HMN and Consolidator values are accepted.
func NewSession(c *cluster.Cluster, overhead cluster.VMMOverhead, mapper Mapper) (*Session, error) {
	led, err := cluster.NewLedger(c, overhead)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	var sm sessionMapper
	switch m := mapper.(type) {
	case nil:
		sm = &HMN{Overhead: overhead}
	case sessionMapper:
		sm = m
	default:
		return nil, fmt.Errorf("session: mapper %s cannot run incrementally (needs a ledger-driven mapper such as HMN or HMN-C)", mapper.Name())
	}
	return &Session{
		led:      led,
		mapper:   sm,
		overhead: overhead,
		active:   make(map[*mapping.Mapping]uint64),
	}, nil
}

// Cluster returns the session's cluster.
func (s *Session) Cluster() *cluster.Cluster { return s.led.Cluster() }

// Active returns the number of environments currently deployed.
func (s *Session) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// ResidualProc returns a snapshot of the residual CPU per host, in host
// declaration order — the live rproc vector across all deployed
// environments.
func (s *Session) ResidualProc() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.led.ResidualProcAll()
}

// Map deploys v against the session's current residual resources. On
// failure the residuals are left exactly as they were (the attempt runs
// on a clone and commits atomically).
func (s *Session) Map(v *virtual.Env) (*mapping.Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	attempt := s.led.Clone()
	m := mapping.New(s.led.Cluster(), v)
	if err := s.mapper.mapOnLedger(attempt, v, m); err != nil {
		return nil, err
	}
	s.commitLocked(attempt, m)
	return m, nil
}

// commitLocked swaps in the attempt ledger and admits m with the next
// sequence number. Callers hold s.mu.
func (s *Session) commitLocked(attempt *cluster.Ledger, m *mapping.Mapping) {
	s.led = attempt
	s.nextSeq++
	s.active[m] = s.nextSeq
}

// ActiveMappings returns the currently deployed mappings in admission
// order, oldest first. Repaired environments carry fresh admission
// numbers, so the slice reflects the order the current deployments were
// committed, not the order their tenants first arrived.
func (s *Session) ActiveMappings() []*mapping.Mapping {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*mapping.Mapping, 0, len(s.active))
	for m := range s.active {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return s.active[out[i]] < s.active[out[j]] })
	return out
}

// FailedHosts returns how many hosts are currently failed (quarantined).
func (s *Session) FailedHosts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.led.Cluster().Hosts() {
		if s.led.Quarantined(h.Node) {
			n++
		}
	}
	return n
}

// CutLinks returns how many physical links are currently cut.
func (s *Session) CutLinks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for e := 0; e < s.led.Cluster().Net().NumEdges(); e++ {
		if s.led.EdgeCut(e) {
			n++
		}
	}
	return n
}

// ErrUnknownTarget is returned by the failure primitives when the named
// node is not a host or the edge ID is out of range.
var ErrUnknownTarget = errors.New("core: no such host or link")

// ErrAlreadyFailed is returned by FailHost/FailLink when the target is
// already failed — failing it again would silently report zero evictions
// and hide that the operator is re-draining a dead target.
var ErrAlreadyFailed = errors.New("core: target is already failed")

// ErrNotFailed is returned by RestoreHost/RestoreLink when the target
// was never failed: an operator typo must not "restore" a healthy host
// and mask the still-failed one.
var ErrNotFailed = errors.New("core: target is not failed")

// FailHost models the failure (or administrative draining) of one host:
// no future deployment will place guests on it, and every currently
// active environment that has guests there is evicted from the session —
// its healthy-host resources and path bandwidth are returned, and the
// affected mappings are reported (in admission order, oldest first) so
// their owners can redeploy with Map or hand them to Repair. Unaffected
// environments keep running untouched.
func (s *Session) FailHost(node graph.NodeID) ([]*mapping.Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failHostLocked(node)
}

func (s *Session) failHostLocked(node graph.NodeID) ([]*mapping.Mapping, error) {
	if !s.led.Cluster().IsHost(node) {
		return nil, fmt.Errorf("%w: node %d is not a host", ErrUnknownTarget, node)
	}
	if s.led.Quarantined(node) {
		return nil, fmt.Errorf("%w: host %d", ErrAlreadyFailed, node)
	}
	var affected []*mapping.Mapping
	for m := range s.active {
		for _, h := range m.GuestHost {
			if h == node {
				affected = append(affected, m)
				break
			}
		}
	}
	s.sortByAdmission(affected)
	// Evict before quarantining: release must restore resources on the
	// failing host too, so the ledger stays consistent if the host is
	// later readmitted.
	for _, m := range affected {
		s.releaseLocked(m)
	}
	s.led.Quarantine(node)
	return affected, nil
}

// FailLink models the failure of one physical link: no future routing
// will cross it, and every active environment whose paths use it is
// evicted (resources returned) and reported in admission order for
// redeployment. Guests are unaffected directly — only the routing
// changes — but the environment is evicted as a whole, since its
// remaining paths hold reservations sized for the old routing; Repair
// restores the placements and re-routes only the broken paths when it
// can.
func (s *Session) FailLink(edgeID int) ([]*mapping.Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failLinkLocked(edgeID)
}

func (s *Session) failLinkLocked(edgeID int) ([]*mapping.Mapping, error) {
	if edgeID < 0 || edgeID >= s.led.Cluster().Net().NumEdges() {
		return nil, fmt.Errorf("%w: edge %d out of range", ErrUnknownTarget, edgeID)
	}
	if s.led.EdgeCut(edgeID) {
		return nil, fmt.Errorf("%w: edge %d", ErrAlreadyFailed, edgeID)
	}
	var affected []*mapping.Mapping
	for m := range s.active {
	scan:
		for _, p := range m.LinkPath {
			for _, eid := range p.Edges {
				if eid == edgeID {
					affected = append(affected, m)
					break scan
				}
			}
		}
	}
	s.sortByAdmission(affected)
	for _, m := range affected {
		s.releaseLocked(m)
	}
	s.led.CutEdge(edgeID)
	return affected, nil
}

// sortByAdmission orders mappings by their admission sequence number,
// oldest first. Callers hold s.mu and pass mappings still in s.active.
func (s *Session) sortByAdmission(ms []*mapping.Mapping) {
	sort.Slice(ms, func(i, j int) bool { return s.active[ms[i]] < s.active[ms[j]] })
}

// RestoreLink readmits a previously failed physical link. Restoring a
// link that is not failed returns ErrNotFailed.
func (s *Session) RestoreLink(edgeID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if edgeID < 0 || edgeID >= s.led.Cluster().Net().NumEdges() {
		return fmt.Errorf("%w: edge %d out of range", ErrUnknownTarget, edgeID)
	}
	if !s.led.EdgeCut(edgeID) {
		return fmt.Errorf("%w: edge %d", ErrNotFailed, edgeID)
	}
	s.led.RestoreEdge(edgeID)
	return nil
}

// RestoreHost readmits a previously failed host. Restoring a host that
// is not failed returns ErrNotFailed.
func (s *Session) RestoreHost(node graph.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.led.Cluster().IsHost(node) {
		return fmt.Errorf("%w: node %d is not a host", ErrUnknownTarget, node)
	}
	if !s.led.Quarantined(node) {
		return fmt.Errorf("%w: host %d", ErrNotFailed, node)
	}
	s.led.Unquarantine(node)
	return nil
}

// ErrNotActive is returned by Release for a mapping the session does not
// currently hold.
var ErrNotActive = errors.New("core: mapping is not active in this session")

// Release tears an environment down, returning every resource it held.
func (s *Session) Release(m *mapping.Mapping) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.active[m]; !ok {
		return ErrNotActive
	}
	s.releaseLocked(m)
	return nil
}

func (s *Session) releaseLocked(m *mapping.Mapping) {
	for g, node := range m.GuestHost {
		guest := m.Env.Guest(virtual.GuestID(g))
		s.led.ReleaseGuest(node, guest.Proc, guest.Mem, guest.Stor)
	}
	for l, p := range m.LinkPath {
		s.led.ReleaseBandwidth(p, m.Env.Link(l).BW)
	}
	delete(s.active, m)
}
