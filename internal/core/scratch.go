package core

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/virtual"
)

// mapScratch carries every reusable buffer one mapping attempt needs —
// the link-sort workspace, the host index arrays, the Networking
// stage's link and ID buffers, the A*Prune scratch and the path arena —
// so the steady-state admission path allocates none of them. Attempts
// borrow one from mapScratchPool (getMapScratch/putMapScratch) for the
// duration of the attempt; buffers grow to the largest cluster and
// environment they have served and are then reused as-is. A mapScratch
// is single-owner state: never shared between concurrent attempts.
type mapScratch struct {
	// Networking stage: link-ID worklist and the canonical-order copy of
	// the links being routed.
	ids   []int
	links []virtual.Link

	// sortLinksByBW workspace: packed sort keys and the gather buffer.
	kvs    []linkKV
	gather []virtual.Link

	// Host index arrays (hostIndex.order/pos/nodeOf).
	hiOrder []graph.NodeID
	hiPos   []int
	hiNode  []graph.NodeID

	// A*Prune search state and the slab allocator committed paths are
	// carved from. The arena's handed-out storage is never reused, so
	// pooling it is safe: reuse only continues filling fresh chunk space.
	astar *graph.AStarScratch
	arena *graph.PathArena

	// par is the parallel Networking stage's per-worker state, created
	// on first use by a mapper with RouteWorkers > 1.
	par *parScratch

	// Migration stage working sets: host node list, per-host guest
	// rosters (dense, keyed by cluster host index), the per-round donor
	// worklist and the live-order snapshot destinations() copies.
	migHosts  []graph.NodeID
	migOnHost [][]virtual.GuestID
	migDonors []graph.NodeID
	migLive   []graph.NodeID
}

var mapScratchPool = sync.Pool{New: func() interface{} {
	return &mapScratch{
		astar: graph.NewAStarScratch(),
		arena: graph.NewPathArena(),
	}
}}

func getMapScratch() *mapScratch   { return mapScratchPool.Get().(*mapScratch) }
func putMapScratch(ms *mapScratch) { mapScratchPool.Put(ms) }

// intsFor returns buf resized to n, reallocating only on growth.
func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// nodesFor returns buf resized to n, reallocating only on growth.
func nodesFor(buf []graph.NodeID, n int) []graph.NodeID {
	if cap(buf) < n {
		return make([]graph.NodeID, n)
	}
	return buf[:n]
}

// linksFor returns buf resized to n, reallocating only on growth.
func linksFor(buf []virtual.Link, n int) []virtual.Link {
	if cap(buf) < n {
		return make([]virtual.Link, n)
	}
	return buf[:n]
}
