package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/virtual"
)

// network is HMN stage 3 (§4.3): it routes every virtual link over a
// physical path. Links are processed in descending bandwidth order (the
// paper's choice — overridable for the ablations); each is routed with
// the modified 1-constrained A*Prune, which maximises bottleneck
// bandwidth subject to the latency budget, and its bandwidth is reserved
// before the next link is considered. Links whose guests share a host are
// handled inside the host (§5.2) and consume nothing.
//
// The Dijkstra latency table towards each destination host (the ar[]
// array of Algorithm 1) is computed once per distinct destination and
// cached: the paper observes that "most part of mapping time is spent in
// the Networking stage to calculate the shortest path of each host to the
// link destination", and the cache is what keeps large instances
// tractable without changing any result.
// arc may be nil (one-shot mappers); a session passes its AR cache so
// repeated admissions on an unchanged topology skip the Dijkstra sweep.
// workers > 1 routes inter-host links speculatively on that many
// goroutines with a deterministic in-order merge (parroute.go); results
// are bit-identical for any worker count. ms may be nil (one-shot
// mappers), which allocates the stage's buffers per call.
func network(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, order LinkOrder, astar graph.AStarPruneOptions, rng *rand.Rand, arc *arCache, workers int, ms *mapScratch) error {
	var ids []int
	if ms != nil {
		ms.ids = intsFor(ms.ids, v.NumLinks())
		ids = ms.ids
	} else {
		ids = make([]int, v.NumLinks())
	}
	for i := range ids {
		ids[i] = i
	}
	return routeLinks(led, v, assign, paths, ids, order, astar, rng, arc, workers, ms)
}

// routeLinks routes the subset of v's virtual links named by linkIDs,
// writing each computed path into paths[link.ID]. Guest placements
// (assign) are fixed; reservations already on led — including the paths
// of links outside the subset — are respected. It is the whole
// Networking stage when linkIDs covers every link, and the repair
// engine's cheap path when it covers only the links a failure broke.
func routeLinks(led *cluster.Ledger, v *virtual.Env, assign []graph.NodeID, paths []graph.Path, linkIDs []int, order LinkOrder, astar graph.AStarPruneOptions, rng *rand.Rand, arc *arCache, workers int, ms *mapScratch) error {
	net := led.Cluster().Net()
	bw := led.BandwidthFunc()

	var links []virtual.Link
	if ms != nil {
		ms.links = linksFor(ms.links, len(linkIDs))
		links = ms.links
	} else {
		links = make([]virtual.Link, len(linkIDs))
	}
	for i, id := range linkIDs {
		links[i] = v.Link(id)
	}
	// (BW, ID) is a strict total order, so the packed-key sorts produce
	// the permutations the seed's stable sorts did — minus the struct
	// comparator and swap machinery the profiles showed dominating the
	// stage's fixed costs at 2000 guests.
	switch order {
	case OrderAscendingBW:
		sortLinksByBWIn(links, false, ms)
	case OrderRandom:
		r := rng
		if r == nil {
			r = rand.New(rand.NewSource(1))
		}
		r.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	default: // OrderDescendingBW — the paper's order
		sortLinksByBWIn(links, true, ms)
	}

	// The Dijkstra ar[] tables only depend on the topology, never on the
	// reservations made while routing, so the tables for every distinct
	// destination can be computed concurrently up front. Routing itself
	// stays sequential — each reservation changes the residual bandwidth
	// the next search must see — so this is the stage's only safe
	// parallelism, and it covers the cost §5.2 identifies as dominant.
	// With a session AR cache the sweep shrinks to the cache misses.
	tables := arTables(led, links, assign, arc)
	arTo := func(dest graph.NodeID) []float64 {
		if ar, ok := tables[dest]; ok {
			return ar
		}
		// Only reachable if assign changed after precompute — keep a
		// correct fallback anyway, and let it consult and feed the
		// session cache like the precompute sweep does.
		var ar []float64
		if arc != nil {
			gen := led.TopoGen()
			if ar = arc.lookup(gen, dest); ar != nil {
				arc.hits.Add(1)
			} else {
				arc.misses.Add(1)
				ar = graph.DijkstraLatencyAvoiding(net, dest, led.EdgeCut)
				arc.store(gen, dest, ar)
			}
		} else {
			ar = graph.DijkstraLatency(net, dest)
		}
		tables[dest] = ar
		return ar
	}

	// With workers > 1 the routing loop itself runs speculatively on
	// worker goroutines with a deterministic in-order merge; the results
	// are bit-identical to the sequential loop below for any count.
	if workers > 1 && len(links) >= minParallelLinks {
		return routeLinksParallel(led, v, links, assign, paths, astar, arTo, workers, ms)
	}

	// One scratch serves the whole stage: routing is sequential, so every
	// A*Prune search reuses the same open/closed structures instead of
	// allocating per link.
	scratch := astar.Scratch
	if scratch == nil {
		if ms != nil {
			scratch = ms.astar
		} else {
			scratch = graph.NewAStarScratch()
		}
	}
	arena := astar.Arena
	if arena == nil && ms != nil {
		arena = ms.arena
	}

	for _, link := range links {
		src, dst := assign[link.From], assign[link.To]
		if src == dst {
			paths[link.ID] = graph.TrivialPathIn(src, arena)
			continue
		}
		opts := astar
		opts.AR = arTo(dst)
		opts.Scratch = scratch
		opts.Arena = arena
		p, ok := graph.AStarPrune(net, src, dst, link.BW, link.Lat, bw, &opts)
		if !ok {
			return fmt.Errorf("%w: link %d (%s-%s, %.3fMbps within %.1fms) between hosts %d and %d",
				ErrNoPath, link.ID, v.Guest(link.From).Name, v.Guest(link.To).Name,
				link.BW, link.Lat, src, dst)
		}
		if err := led.ReserveBandwidth(p, link.BW); err != nil {
			// A*Prune only returns paths whose every edge clears the
			// demand against the same ledger view, so this is unreachable.
			panic("core: A*Prune returned an unreservable path: " + err.Error())
		}
		paths[link.ID] = p
	}
	return nil
}

// arTables gathers the Dijkstra latency table for every distinct
// destination host of the inter-host links: from arc when it holds the
// snapshot's topology generation, computing only the misses — in
// parallel across GOMAXPROCS workers — and filling the cache for the
// admissions that follow. Tables are pure functions of the topology, so
// neither the computation order nor the cache state can affect results.
//
// With arc == nil (the one-shot Mapper entry points) the tables ignore
// cut edges, as they always have: a missing edge only makes the static
// table a looser — still admissible — bound. Cached tables are computed
// cut-aware via DijkstraLatencyAvoiding so an entry is exact for the
// generation that keys it.
func arTables(led *cluster.Ledger, links []virtual.Link, assign []graph.NodeID, arc *arCache) map[graph.NodeID][]float64 {
	net := led.Cluster().Net()
	distinct := make(map[graph.NodeID]bool)
	for _, link := range links {
		src, dst := assign[link.From], assign[link.To]
		if src != dst {
			distinct[dst] = true
		}
	}
	out := make(map[graph.NodeID][]float64, len(distinct))
	if len(distinct) == 0 {
		return out
	}

	var gen uint64
	dests := make([]graph.NodeID, 0, len(distinct))
	if arc != nil {
		gen = led.TopoGen()
		// Tables are pure per-destination; the visit order cannot leak
		// into out, the cache, or the hit/miss totals.
		//hmn:orderinvariant
		for d := range distinct {
			if t := arc.lookup(gen, d); t != nil {
				out[d] = t
				arc.hits.Add(1)
			} else {
				dests = append(dests, d)
				arc.misses.Add(1)
			}
		}
	} else {
		//hmn:orderinvariant
		for d := range distinct {
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return out
	}

	compute := func(d graph.NodeID) []float64 {
		if arc == nil {
			return graph.DijkstraLatency(net, d)
		}
		return graph.DijkstraLatencyAvoiding(net, d, led.EdgeCut)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(dests) {
		workers = len(dests)
	}
	tables := make([][]float64, len(dests))
	if workers <= 1 {
		for i, d := range dests {
			tables[i] = compute(d)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(dests) {
						return
					}
					tables[i] = compute(dests[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, d := range dests {
		out[d] = tables[i]
		if arc != nil {
			arc.store(gen, d, tables[i])
		}
	}
	return out
}
