package core

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/virtual"
)

// Parallel Networking stage: round-based speculative routing with a
// deterministic in-order merge. The sequential stage is inherently
// order-dependent — each reservation changes the residual bandwidth the
// next search must see — so naive parallelism would change results. The
// speculative scheme keeps the sequential semantics exactly:
//
//   - Links are processed in rounds of roundSize, in the stage's
//     canonical (BW desc, ID asc) order. Within a round, workers route
//     their links against the round-start ledger, which no one mutates
//     until every worker has finished (reads only; the merge barrier is
//     a sync.WaitGroup). Each worker records the set of edges whose
//     residual its search read AND accepted (residual >= demand).
//   - The merge then walks the round in canonical order. A speculative
//     result is committed verbatim iff none of its accepted-read edges
//     was dirtied by an earlier commit of the same round. Otherwise the
//     link is re-routed on the spot against the live ledger — which is,
//     by induction, exactly the computation the sequential loop performs.
//
// Why an unconflicted speculation equals the sequential result: the
// search outcome is a pure function of the residual values it observes
// (the ar[] tables and topology are round-invariant). Accepted reads are
// unchanged by definition of no-conflict. Rejected reads (residual <
// demand) can only have decreased — residuals only go down within a
// round — so every rejection stays a rejection, and a rejected value is
// never used beyond the comparison. The sequential search would
// therefore observe an identical trace and return the identical path;
// for the same reason every committed edge still clears its demand, so
// ReserveBandwidth cannot fail where the sequential stage would not. An
// error (no feasible path) surfaces at the merge position of the failing
// link, after exactly the commits the sequential loop would have made.
//
// The scheme degrades gracefully rather than failing: on fabrics where
// consecutive links share trunk edges (switched trees), conflicts simply
// send more links through the merge-side re-route and throughput
// approaches the sequential stage; sparser fabrics (tori) speculate
// almost conflict-free.

// minParallelLinks gates the parallel stage: below this many links the
// round/merge machinery costs more than the searches it parallelises.
const minParallelLinks = 32

// specPerWorker sizes a round at workers*specPerWorker links: enough to
// amortise the per-round barrier, small enough to bound the speculation
// wasted when a round conflicts heavily.
const specPerWorker = 8

// specResult is one round slot: the prepared inputs (trivial flag,
// pre-resolved ar[] table) and the worker's speculative output.
type specResult struct {
	trivial bool
	ar      []float64
	ok      bool
	path    graph.Path
	// Accepted-read set: worker (by round index), and the [lo,hi) window
	// of that worker's reads buffer holding the edge IDs this search
	// read and accepted.
	worker         int
	readLo, readHi int32
}

// parWorker is one routing worker's private state: its own search
// scratch and path arena (neither is safe for concurrent use), the
// epoch-stamped dedup array for accepted-read recording, and the
// round's concatenated read sets.
type parWorker struct {
	astar *graph.AStarScratch
	arena *graph.PathArena
	seen  []uint32 // edge ID -> epoch of the search that last recorded it
	epoch uint32
	reads []int32 // accepted-read edge IDs, all of this round's searches
}

// parScratch is the parallel stage's reusable state, pooled inside
// mapScratch. Like the rest of mapScratch it is single-owner: one
// attempt at a time, with the workers slice read-only while worker
// goroutines run.
type parScratch struct {
	workers []*parWorker
	specs   []specResult
	dirty   []uint32 // edge ID -> round epoch that last reserved on it
	round   uint32
}

// ensure grows the scratch to serve `workers` goroutines on a fabric of
// numEdges edges. Epoch arrays are reset (not preserved) on growth.
func (ps *parScratch) ensure(workers, numEdges int) {
	for len(ps.workers) < workers {
		ps.workers = append(ps.workers, &parWorker{
			astar: graph.NewAStarScratch(),
			arena: graph.NewPathArena(),
		})
	}
	for _, w := range ps.workers[:workers] {
		if len(w.seen) < numEdges {
			w.seen = make([]uint32, numEdges)
			w.epoch = 0
		}
	}
	if len(ps.dirty) < numEdges {
		ps.dirty = make([]uint32, numEdges)
		ps.round = 0
	}
}

// route speculatively routes this worker's share of the round — slots
// first, first+stride, ... — against the (frozen) round-start ledger,
// recording each search's accepted-read edge set.
//
//hmn:noalloc
func (w *parWorker) route(net *graph.Graph, led *cluster.Ledger, batch []virtual.Link, assign []graph.NodeID, specs []specResult, base graph.AStarPruneOptions, first, stride int) {
	bwBase := led.BandwidthFunc()
	var demand float64
	// One closure per round, not per link: it reads the loop-updated
	// demand so every search shares it.
	//hmn:allocok one closure per round, amortised over roundSize searches
	bw := func(eid int) float64 {
		r := bwBase(eid)
		if r >= demand && w.seen[eid] != w.epoch {
			w.seen[eid] = w.epoch
			w.reads = append(w.reads, int32(eid)) //hmn:allocok reads buffer reaches round high-water once, then recycles
		}
		return r
	}
	for i := first; i < len(batch); i += stride {
		sp := &specs[i]
		if sp.trivial {
			continue
		}
		link := batch[i]
		src, dst := assign[link.From], assign[link.To]
		w.epoch++
		if w.epoch == 0 { // wrapped: stamps are ambiguous, hard-reset
			clear(w.seen)
			w.epoch = 1
		}
		demand = link.BW
		lo := int32(len(w.reads))
		opts := base
		opts.AR = sp.ar
		opts.Scratch = w.astar
		opts.Arena = w.arena
		sp.path, sp.ok = graph.AStarPrune(net, src, dst, link.BW, link.Lat, bw, &opts)
		sp.worker, sp.readLo, sp.readHi = first, lo, int32(len(w.reads))
	}
}

// routeLinksParallel is the parallel body of routeLinks: links arrive
// already in canonical order, and the produced paths, reservations,
// and errors are bit-identical to the sequential loop for any worker
// count. See the package comment above for the argument.
//
//hmn:noalloc
func routeLinksParallel(led *cluster.Ledger, v *virtual.Env, links []virtual.Link, assign []graph.NodeID, paths []graph.Path, astar graph.AStarPruneOptions, arTo func(graph.NodeID) []float64, workers int, ms *mapScratch) error {
	net := led.Cluster().Net()
	bwLive := led.BandwidthFunc()

	var ps *parScratch
	if ms != nil {
		if ms.par == nil {
			ms.par = &parScratch{} //hmn:allocok once per pooled mapScratch, then reused forever
		}
		ps = ms.par
	} else { // one-shot mappers: per-call state, as everywhere else
		ps = &parScratch{} //hmn:allocok one-shot mappers have no pool to recycle from
	}
	ps.ensure(workers, net.NumEdges())

	// Merge-side search state for conflicted re-routes; distinct from the
	// worker scratches, shared with nothing.
	mergeScratch := astar.Scratch
	if mergeScratch == nil {
		if ms != nil {
			mergeScratch = ms.astar
		} else {
			mergeScratch = graph.NewAStarScratch()
		}
	}
	mergeArena := astar.Arena
	if mergeArena == nil && ms != nil {
		mergeArena = ms.arena
	}

	roundSize := workers * specPerWorker
	for start := 0; start < len(links); start += roundSize {
		end := start + roundSize
		if end > len(links) {
			end = len(links)
		}
		batch := links[start:end]

		if cap(ps.specs) < len(batch) {
			ps.specs = make([]specResult, len(batch)) //hmn:allocok grows to the round-size high-water, then reused
		}
		specs := ps.specs[:len(batch)]

		// Prep (serial): trivial flags and ar[] tables. arTo may fill the
		// table cache, so it must not be called from workers.
		for i, link := range batch {
			src, dst := assign[link.From], assign[link.To]
			if src == dst {
				specs[i] = specResult{trivial: true}
				continue
			}
			specs[i] = specResult{ar: arTo(dst)}
		}

		// Speculation (parallel): the ledger is frozen — workers only
		// read it — until wg.Wait. Worker w owns slots w, w+n, ...
		n := workers
		if n > len(batch) {
			n = len(batch)
		}
		var wg sync.WaitGroup
		for wi := 0; wi < n; wi++ {
			w := ps.workers[wi]
			w.reads = w.reads[:0]
			wg.Add(1)
			go func(w *parWorker, first int) { //hmn:allocok per-round worker launch; the barrier amortises it over specPerWorker searches
				defer wg.Done()
				w.route(net, led, batch, assign, specs, astar, first, n)
			}(w, wi)
		}
		wg.Wait()

		// Merge (serial, canonical order).
		ps.round++
		if ps.round == 0 { // wrapped: stamps are ambiguous, hard-reset
			clear(ps.dirty)
			ps.round = 1
		}
		for i := range specs {
			link := batch[i]
			sp := &specs[i]
			src, dst := assign[link.From], assign[link.To]
			if sp.trivial {
				paths[link.ID] = graph.TrivialPathIn(src, mergeArena)
				continue
			}

			commit := sp.ok
			if commit {
				reads := ps.workers[sp.worker].reads[sp.readLo:sp.readHi]
				for _, e := range reads {
					if ps.dirty[e] == ps.round {
						commit = false
						break
					}
				}
			}

			p := sp.path
			if !commit {
				// Conflicted or speculatively infeasible: compute the
				// sequential answer against the live ledger.
				opts := astar
				opts.AR = sp.ar
				opts.Scratch = mergeScratch
				opts.Arena = mergeArena
				var ok bool
				p, ok = graph.AStarPrune(net, src, dst, link.BW, link.Lat, bwLive, &opts)
				if !ok {
					return fmt.Errorf("%w: link %d (%s-%s, %.3fMbps within %.1fms) between hosts %d and %d", //hmn:allocok no-path failure ends the mapping attempt
						ErrNoPath, link.ID, v.Guest(link.From).Name, v.Guest(link.To).Name,
						link.BW, link.Lat, src, dst)
				}
			}
			if err := led.ReserveBandwidth(p, link.BW); err != nil {
				// Unreachable for the same reason as the sequential loop:
				// committed speculations re-verified their reads, and
				// re-routes saw the live ledger.
				panic("core: A*Prune returned an unreservable path: " + err.Error()) //hmn:allocok unreachable invariant-violation path
			}
			for _, eid := range p.Edges {
				ps.dirty[eid] = ps.round
			}
			paths[link.ID] = p
		}
	}
	return nil
}
