package core

// ResidualSummary is the compact headroom digest a federation router
// keeps per shard: enough to pick a destination without touching the
// shard's ledger again until the epoch moves. It is a consistent cut of
// the session under one lock acquisition, stamped with the session's
// version counter so a router can tell a stale summary from a fresh one
// without comparing any of the payload fields.
type ResidualSummary struct {
	// Epoch is the session's committed-change counter at capture time.
	// Two summaries with equal epochs describe identical ledger states.
	Epoch uint64
	// TotalProc and MaxProc are the sum and maximum of residual CPU
	// (MIPS) across non-quarantined hosts — the shard's aggregate
	// headroom and the largest single environment fragment it could
	// still host.
	TotalProc float64
	MaxProc   float64
	// MinLinkBW and MaxLinkBW bound the residual bandwidth (Mbps)
	// across un-cut physical links: the bottleneck link's headroom and
	// the best single-link headroom.
	MinLinkBW float64
	MaxLinkBW float64
	// Hosts counts non-quarantined hosts; Envs and Guests count the
	// deployed environments and their guests.
	Hosts  int
	Envs   int
	Guests int
}

// ResidualSummary captures the shard-routing digest in one O(H+E+G)
// pass under the session lock.
func (s *Session) ResidualSummary() ResidualSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := ResidualSummary{Epoch: s.version, Envs: len(s.active)}
	for _, node := range s.c.HostNodes() {
		if s.led.Quarantined(node) {
			continue
		}
		r := s.led.ResidualProc(node)
		sum.TotalProc += r
		if r > sum.MaxProc {
			sum.MaxProc = r
		}
		sum.Hosts++
	}
	net := s.c.Net()
	firstEdge := true
	for e := 0; e < net.NumEdges(); e++ {
		if s.led.EdgeCut(e) {
			continue
		}
		bw := s.led.ResidualBandwidth(e)
		if firstEdge || bw < sum.MinLinkBW {
			sum.MinLinkBW = bw
		}
		if firstEdge || bw > sum.MaxLinkBW {
			sum.MaxLinkBW = bw
		}
		firstEdge = false
	}
	//hmn:orderinvariant
	for m := range s.active {
		sum.Guests += len(m.GuestHost)
	}
	return sum
}

// Version returns the session's committed-change counter. It moves on
// every admission, release, failure, restore and migration commit, so
// an unchanged version between two reads proves no state change
// happened in between — the epoch a ResidualSummary is stamped with.
func (s *Session) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}
