package core

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/workload"
)

// Steady-state allocation budgets for the two hot paths. The measured
// numbers on the reference workloads are ~9 allocs per Map+Release
// (the mapping.Mapping result and its slices, which escape to the
// caller by design, plus the active-set bookkeeping) and ~1 per
// snapshot-and-reroute cycle (amortised path-arena chunk growth). The
// budgets carry modest headroom for GC-timing noise — a sync.Pool
// emptied by a collection mid-measurement re-allocates its scratch
// once — but fail well before a reintroduced per-admission Clone(),
// per-stage map, or per-link path allocation (each worth tens to
// hundreds of allocs) could hide.
const (
	admissionAllocBudget = 20
	rerouteAllocBudget   = 8
)

// allocsCluster is the reference admission fixture: the paper's host
// distribution on the 8x5 torus, matching BenchmarkSessionMapRelease.
func allocsCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	rng := rand.New(rand.NewSource(15))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	return mustTorus(t, specs, workload.TorusRows, workload.TorusCols)
}

// TestAdmissionAllocsBudget pins the steady-state admission path: after
// warm-up, a Map+Release cycle on a live session must stay within
// admissionAllocBudget allocations. This is the regression gate for the
// zero-allocation admission work — the snapshot free-list, the journal
// resync, the reusable Txn and the pooled mapping scratch. A failure
// here means some per-admission allocation came back.
func TestAdmissionAllocsBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not apply to the race detector's instrumented allocator")
	}
	c := allocsCluster(t)
	s, err := NewSession(c, cluster.VMMOverhead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := workload.GenerateEnv(workload.HighLevelParams(60, 0.03), rand.New(rand.NewSource(2)))

	cycle := func() {
		m, mErr := s.Map(env)
		if mErr != nil {
			t.Fatal(mErr)
		}
		if rErr := s.Release(m); rErr != nil {
			t.Fatal(rErr)
		}
	}
	for i := 0; i < 20; i++ {
		cycle() // grow the free-list, scratch pool and journal to steady state
	}
	avg := testing.AllocsPerRun(200, cycle)
	t.Logf("admission steady state: %.1f allocs per Map+Release (budget %d)", avg, admissionAllocBudget)
	if avg > admissionAllocBudget {
		t.Fatalf("admission path allocates %.1f per Map+Release, budget is %d", avg, admissionAllocBudget)
	}
}

// TestRerouteAllocsBudget pins the repair/migrate reroute hot path: one
// snapshot-release-reroute cycle — the exact shape tryReroute and
// migrateAttempt pay per optimistic attempt — must stay within
// rerouteAllocBudget allocations once warm. The cycle takes a pooled
// snapshot, releases a set of inter-host paths on it, re-routes them
// through the mapper with pooled scratch, and returns the snapshot.
func TestRerouteAllocsBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not apply to the race detector's instrumented allocator")
	}
	c := allocsCluster(t)
	s, err := NewSession(c, cluster.VMMOverhead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := workload.GenerateEnv(workload.HighLevelParams(60, 0.03), rand.New(rand.NewSource(2)))
	m, err := s.Map(env)
	if err != nil {
		t.Fatal(err)
	}

	// The broken set: every link the admission routed across the fabric
	// (trivial same-host paths cannot be "broken" by a link failure).
	var links []int
	for l, p := range m.LinkPath {
		if len(p.Nodes) > 1 {
			links = append(links, l)
		}
	}
	if len(links) == 0 {
		t.Fatal("admission produced no inter-host paths to reroute")
	}
	paths := make([]graph.Path, len(m.LinkPath))

	cycle := func() {
		s.mu.Lock()
		snap := s.snapshotLocked()
		s.mu.Unlock()
		copy(paths, m.LinkPath)
		for _, l := range links {
			snap.ReleaseBandwidth(m.LinkPath[l], env.Link(l).BW)
		}
		ms := getMapScratch()
		rErr := s.mapper.rerouteOnLedger(snap, env, m.GuestHost, paths, links, s.ar, ms)
		putMapScratch(ms)
		if rErr != nil {
			t.Fatal(rErr)
		}
		s.mu.Lock()
		s.freeSnapshotLocked(snap)
		s.mu.Unlock()
	}
	for i := 0; i < 20; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(200, cycle)
	t.Logf("reroute steady state: %.1f allocs per %d-link cycle (budget %d)", avg, len(links), rerouteAllocBudget)
	if avg > rerouteAllocBudget {
		t.Fatalf("reroute path allocates %.1f per cycle, budget is %d", avg, rerouteAllocBudget)
	}
}
