package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/stats"
	"repro/internal/virtual"
	"repro/internal/workload"
)

// chaosHandle tracks one live environment through the schedule: repairs
// swap its mapping but keep its label, so the log reads in tenant terms.
type chaosHandle struct {
	label string
	m     *mapping.Mapping
}

// chaosRun drives a seeded randomized fail/restore/map/release schedule
// against a live session and returns a textual log of every outcome.
// After every operation it asserts the session's invariants: each
// surviving mapping validates against constraints Eq. (1)-(9), avoids
// every failed host and cut link, and the combined deployment fits a
// shared residual ledger. At the end it restores all failures, releases
// everything, and asserts the ledger returned exactly to its primed
// baseline.
func chaosRun(t *testing.T, seed int64) string {
	t.Helper()
	// The cluster draw is fixed; only the schedule varies with seed.
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rand.New(rand.NewSource(1)))
	c := mustTorus(t, specs, 8, 5)
	s, err := NewSession(c, cluster.VMMOverhead{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline := s.ResidualProc()
	rng := rand.New(rand.NewSource(seed))

	var sb strings.Builder
	var active []chaosHandle
	var failedHosts []graph.NodeID
	var cutLinks []int
	envCount := 0
	hosts := c.HostNodes()
	numEdges := c.Net().NumEdges()

	containsNode := func(xs []graph.NodeID, x graph.NodeID) bool {
		for _, v := range xs {
			if v == x {
				return true
			}
		}
		return false
	}
	containsInt := func(xs []int, x int) bool {
		for _, v := range xs {
			if v == x {
				return true
			}
		}
		return false
	}
	// applyRepairs reconciles the handle list with the repair results in
	// order and logs each outcome.
	applyRepairs := func(op int, what string, results []RepairResult) {
		for _, res := range results {
			idx := -1
			for i, h := range active {
				if h.m == res.Old {
					idx = i
					break
				}
			}
			if idx == -1 {
				t.Fatalf("op%d: repair result for an unknown mapping", op)
			}
			fmt.Fprintf(&sb, "op%d %s %s -> %s\n", op, what, active[idx].label, res.Outcome)
			if res.Outcome == RepairUnrecoverable {
				active = append(active[:idx], active[idx+1:]...)
			} else {
				active[idx].m = res.New
			}
		}
	}

	const ops = 120
	for op := 0; op < ops; op++ {
		switch rng.Intn(8) {
		case 0, 1, 2: // map a fresh tenant
			envCount++
			label := fmt.Sprintf("env%d", envCount)
			env := smallEnv(int64(10000+envCount), 8+rng.Intn(10))
			m, err := s.Map(env)
			if err != nil {
				fmt.Fprintf(&sb, "op%d map %s failed\n", op, label)
				continue
			}
			active = append(active, chaosHandle{label, m})
			fmt.Fprintf(&sb, "op%d map %s ok\n", op, label)
		case 3: // release a random tenant
			if len(active) == 0 {
				continue
			}
			i := rng.Intn(len(active))
			h := active[i]
			if err := s.Release(h.m); err != nil {
				t.Fatalf("op%d release %s: %v", op, h.label, err)
			}
			active = append(active[:i], active[i+1:]...)
			fmt.Fprintf(&sb, "op%d release %s\n", op, h.label)
		case 4: // fail a host and auto-repair
			node := hosts[rng.Intn(len(hosts))]
			if containsNode(failedHosts, node) {
				continue
			}
			results, err := s.FailHostAndRepair(node)
			if err != nil {
				t.Fatalf("op%d FailHostAndRepair(%d): %v", op, node, err)
			}
			failedHosts = append(failedHosts, node)
			fmt.Fprintf(&sb, "op%d failhost %d evicted %d\n", op, node, len(results))
			applyRepairs(op, "repairhost", results)
		case 5: // cut a link and auto-repair
			eid := rng.Intn(numEdges)
			if containsInt(cutLinks, eid) {
				continue
			}
			results, err := s.FailLinkAndRepair(eid)
			if err != nil {
				t.Fatalf("op%d FailLinkAndRepair(%d): %v", op, eid, err)
			}
			cutLinks = append(cutLinks, eid)
			fmt.Fprintf(&sb, "op%d faillink %d evicted %d\n", op, eid, len(results))
			applyRepairs(op, "repairlink", results)
		case 6: // restore the oldest failed host
			if len(failedHosts) == 0 {
				continue
			}
			node := failedHosts[0]
			failedHosts = failedHosts[1:]
			if err := s.RestoreHost(node); err != nil {
				t.Fatalf("op%d RestoreHost(%d): %v", op, node, err)
			}
			fmt.Fprintf(&sb, "op%d restorehost %d\n", op, node)
		case 7: // restore the oldest cut link
			if len(cutLinks) == 0 {
				continue
			}
			eid := cutLinks[0]
			cutLinks = cutLinks[1:]
			if err := s.RestoreLink(eid); err != nil {
				t.Fatalf("op%d RestoreLink(%d): %v", op, eid, err)
			}
			fmt.Fprintf(&sb, "op%d restorelink %d\n", op, eid)
		}
		chaosCheckInvariants(t, op, c, active, failedHosts, cutLinks)
		chaosCheckObjective(t, op, s)
	}

	// Teardown: heal the cluster, release every tenant, and require the
	// ledger back at its primed baseline.
	for _, node := range failedHosts {
		if err := s.RestoreHost(node); err != nil {
			t.Fatal(err)
		}
	}
	for _, eid := range cutLinks {
		if err := s.RestoreLink(eid); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range active {
		if err := s.Release(h.m); err != nil {
			t.Fatalf("teardown release %s: %v", h.label, err)
		}
	}
	if s.Active() != 0 {
		t.Fatalf("Active = %d after teardown", s.Active())
	}
	after := s.ResidualProc()
	for i := range baseline {
		if math.Abs(baseline[i]-after[i]) > 1e-6 {
			t.Fatalf("host %d residual %.9f, want baseline %.9f after teardown", i, after[i], baseline[i])
		}
	}
	return sb.String()
}

// chaosCheckObjective cross-checks the ledger's incremental Σ/Σ²
// objective against the exact two-pass recompute after every chaos
// operation: the accumulators must track place/migrate/fail/repair/
// release sequences to within 1e-9 relative error, or the O(1) fast
// path of Eq. (10) has silently diverged from Eq. (10).
func chaosCheckObjective(t *testing.T, op int, s *Session) {
	t.Helper()
	exact := stats.PopStdDev(s.ResidualProc())
	inc := s.ObjectiveStdDev()
	if tol := 1e-9 * math.Max(1, exact); math.Abs(inc-exact) > tol {
		t.Fatalf("op%d: incremental objective %.15g drifted from exact %.15g (> %g)", op, inc, exact, tol)
	}
}

// chaosCheckInvariants asserts that every surviving mapping validates
// against Eq. (1)-(9), avoids the failed hosts and cut links, and that
// the combined deployment fits a shared residual ledger (no aggregate
// overcommit across tenants).
func chaosCheckInvariants(t *testing.T, op int, c *cluster.Cluster, active []chaosHandle, failedHosts []graph.NodeID, cutLinks []int) {
	t.Helper()
	led, err := cluster.NewLedger(c, cluster.VMMOverhead{})
	if err != nil {
		t.Fatal(err)
	}
	failed := make(map[graph.NodeID]bool, len(failedHosts))
	for _, n := range failedHosts {
		failed[n] = true
	}
	cut := make(map[int]bool, len(cutLinks))
	for _, e := range cutLinks {
		cut[e] = true
	}
	for _, h := range active {
		if err := h.m.Validate(cluster.VMMOverhead{}); err != nil {
			t.Fatalf("op%d: %s violates Eq. (1)-(9): %v", op, h.label, err)
		}
		for g, node := range h.m.GuestHost {
			if failed[node] {
				t.Fatalf("op%d: %s guest %d sits on failed host %d", op, h.label, g, node)
			}
			guest := h.m.Env.Guest(virtual.GuestID(g))
			if err := led.ReserveGuest(node, guest.Proc, guest.Mem, guest.Stor); err != nil {
				t.Fatalf("op%d: aggregate overcommit by %s: %v", op, h.label, err)
			}
		}
		for l, p := range h.m.LinkPath {
			for _, eid := range p.Edges {
				if cut[eid] {
					t.Fatalf("op%d: %s link %d crosses cut edge %d", op, h.label, l, eid)
				}
			}
			if err := led.ReserveBandwidth(p, h.m.Env.Link(l).BW); err != nil {
				t.Fatalf("op%d: aggregate bandwidth overcommit by %s: %v", op, h.label, err)
			}
		}
	}
}

// TestChaosSeededDeterministic is the acceptance harness: the same seed
// must produce a byte-identical schedule log (mapping, eviction, repair
// and restore outcomes), and a different seed a different one.
func TestChaosSeededDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is not short")
	}
	a := chaosRun(t, 7)
	b := chaosRun(t, 7)
	if a != b {
		t.Fatalf("chaos schedule not deterministic for seed 7:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "failhost") || !strings.Contains(a, "faillink") {
		t.Fatalf("schedule never exercised failures:\n%s", a)
	}
	if c := chaosRun(t, 8); a == c {
		t.Fatal("different seeds produced identical schedules — the harness is vacuous")
	}
}
