package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mapping"
	"repro/internal/virtual"
)

// TestMapBatchConcurrentSessionsStress drives concurrent MapBatch
// rounds on TWO independent sessions at once, interleaved with single
// admissions and releases. Both hot paths draw from shared pools — the
// process-wide mapScratch buffers and each session's snapshot free
// list — so under -race this pins the isolation contracts: a pooled
// scratch or recycled snapshot ledger that served one admission must
// never leak reservations, journal state or residuals into the next,
// least of all across sessions, and each ledger must return exactly to
// its baseline once everything the stress admitted is released.
func TestMapBatchConcurrentSessionsStress(t *testing.T) {
	_, sa := sessionFixture(t)
	_, sb := sessionFixture(t)
	sessions := []*Session{sa, sb}
	baselines := [][]float64{sa.ResidualProc(), sb.ResidualProc()}

	const workers = 4
	rounds := 5
	if testing.Short() {
		rounds = 2
	}

	var mu sync.Mutex
	held := make([][]*mapping.Mapping, len(sessions))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			si := w % 2
			s := sessions[si]
			for i := 0; i < rounds; i++ {
				seed := int64(10000 + w*1000 + i*10)
				envs := []*virtual.Env{
					smallEnv(seed, 12), smallEnv(seed+1, 12), smallEnv(seed+2, 12),
				}
				maps, errs, _ := s.MapBatch(envs)
				for j, m := range maps {
					if errs[j] != nil {
						// Contention can exhaust residuals mid-stress; the
						// failed attempt must leave no trace (checked via
						// the baseline comparison after the join).
						continue
					}
					if err := m.Validate(cluster.VMMOverhead{}); err != nil {
						t.Errorf("worker %d: batch mapping invalid: %v", w, err)
					}
					if j == 0 {
						// Hold the first admission of every round past the
						// join so snapshots keep syncing over a ledger with
						// live reservations from other goroutines.
						mu.Lock()
						held[si] = append(held[si], m)
						mu.Unlock()
						continue
					}
					if err := s.Release(m); err != nil {
						t.Errorf("worker %d: release: %v", w, err)
					}
				}
				// Interleave a single admission: Map and MapBatch share
				// the scratch pool and the snapshot free list, so the two
				// entry points must recycle each other's buffers safely.
				if m, err := s.Map(smallEnv(seed+5, 8)); err == nil {
					if err := s.Release(m); err != nil {
						t.Errorf("worker %d: single release: %v", w, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for si, s := range sessions {
		for _, m := range held[si] {
			if err := s.Release(m); err != nil {
				t.Fatalf("session %d: releasing held mapping: %v", si, err)
			}
		}
		if s.Active() != 0 {
			t.Fatalf("session %d: %d environments still active", si, s.Active())
		}
		res := s.ResidualProc()
		for h := range res {
			// Same tolerance as TestSessionConcurrentStress: float
			// reserve/release round-trips are not bitwise exact, but any
			// pooled-state leak is orders of magnitude above 1e-9.
			if math.Abs(res[h]-baselines[si][h]) > 1e-9 {
				t.Fatalf("session %d host %d: residual %v, baseline %v — pooled state leaked across admissions",
					si, h, res[h], baselines[si][h])
			}
		}
	}
}
