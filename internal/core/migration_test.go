package core

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/topology"
	"repro/internal/virtual"
	"repro/internal/workload"
)

// migrationFixture primes a 4-host uniform torus (1000 MIPS, 1024 MB,
// 1000 GB) with filler reservations so the residual-CPU vector is
// h0=400, h1=900, h2=800, h3=770+h3Extra, and a single-guest env (proc
// 240, mem gMem) assigned to h0. h3Mem inflates the filler memory on h3
// (to block it as a destination when gMem is large).
func migrationFixture(t *testing.T, gMem, h3Mem int64) (*cluster.Ledger, *virtual.Env, []graph.NodeID, []graph.NodeID) {
	t.Helper()
	c := mustTorus(t, uniformSpecs(4, 1000, 1024, 1000), 2, 2)
	led, err := cluster.NewLedger(c, cluster.VMMOverhead{})
	if err != nil {
		t.Fatal(err)
	}
	h := c.HostNodes()
	fill := func(node graph.NodeID, proc float64, mem int64) {
		t.Helper()
		if err := led.ReserveGuest(node, proc, mem, 10); err != nil {
			t.Fatal(err)
		}
	}
	fill(h[0], 360, 10)
	fill(h[1], 100, 10)
	fill(h[2], 200, 10)
	fill(h[3], 230, h3Mem)

	v := virtual.NewEnv()
	v.AddGuest("g0", 240, gMem, 10)
	if err := led.ReserveGuest(h[0], 240, gMem, 10); err != nil {
		t.Fatal(err)
	}
	return led, v, []graph.NodeID{h[0]}, h
}

// sabotageHook returns a proc hook that, the first time any residual-CPU
// mutation fires it, quarantines block and reserves extra load on slow —
// exactly between the Fits check on a migration destination and the
// ReserveGuest that commits it. It models the interference window the
// destination-order snapshot in migrateScoped guards against: the
// quarantine makes the in-flight reserve fail, and the extra load
// re-sorts a live host index mid-scan.
func sabotageHook(t *testing.T, led *cluster.Ledger, inner func(int), block, slow graph.NodeID) func(int) {
	fired := false
	return func(i int) {
		if inner != nil {
			inner(i)
		}
		if fired {
			return
		}
		fired = true
		led.Quarantine(block)
		if err := led.ReserveGuest(slow, 35, 10, 10); err != nil {
			t.Errorf("sabotage reserve: %v", err)
		}
	}
}

// TestMigrateSnapshotSurvivesMidScanReserveFailure is the regression
// test for the destination-order aliasing bug: when a destination's
// reserve fails after its Fits check passed (here: a quarantine landing
// inside the release/reserve window), the scan must continue with the
// next candidate of the order it started from, even though the failed
// attempt's release/re-reserve and the interfering load re-sorted the
// live host index in place. Before the per-attempt snapshot, the range
// continued positionally over the permuted live slice.
func TestMigrateSnapshotSurvivesMidScanReserveFailure(t *testing.T) {
	// gMem 600 with only 214 MB free on h3 keeps h3 out of every scan, so
	// the outcome is a single pinned move.
	led, v, assign, h := migrationFixture(t, 600, 800)
	hi := newHostIndex(led, true)
	defer led.SetProcHook(nil)
	led.SetProcHook(sabotageHook(t, led, hi.fix, h[1], h[2]))

	var trace []moveStep
	moves := migrateScoped(led, v, assign, LoadResidualMIPS, 0, ScopeMostLoaded, hi, false, &trace, nil)

	// Scan order at the start of the attempt: h1 (900), h2 (800), h3,
	// h0. h1 improves, its reserve fails under the quarantine; the next
	// snapshot candidate h2 must receive the guest (h3 never fits the
	// 600 MB guest, and moving back to h0 does not improve).
	want := []moveStep{{guest: 0, from: h[0], to: h[2]}}
	if moves != 1 || !slices.Equal(trace, want) {
		t.Fatalf("moves=%d trace=%v, want 1 move %v", moves, trace, want)
	}
	if assign[0] != h[2] {
		t.Fatalf("guest landed on node %d, want h2=%d", assign[0], h[2])
	}
	// Ledger consistency after the failed attempt: the victim's resources
	// are accounted exactly once, on h2.
	wantRes := map[graph.NodeID]float64{h[0]: 640, h[1]: 900, h[2]: 525, h[3]: 770}
	for node, want := range wantRes {
		if got := led.ResidualProc(node); got != want {
			t.Errorf("residual(%d) = %v, want %v", node, got, want)
		}
	}
	if got := led.ResidualMem(h[2]); got != 1024-10-10-600 {
		t.Errorf("residual mem on h2 = %d, want %d", got, 1024-10-10-600)
	}
}

// TestMigrateLiveIndexMatchesUnindexedUnderMidScanChurn drives the same
// mid-scan interference through both destination sources — the live host
// index and the per-attempt sort — and requires identical move
// sequences, assignments and residuals. The per-attempt sort is
// snapshot-semantics by construction, so any divergence means the live
// index leaked a mid-scan permutation into the iteration.
func TestMigrateLiveIndexMatchesUnindexedUnderMidScanChurn(t *testing.T) {
	// gMem 100 fits everywhere: after the injected failure the move
	// cascades (h0→h2, then h2→h3), exercising the scan across rounds.
	ledA, v, assignA, h := migrationFixture(t, 100, 10)
	hiA := newHostIndex(ledA, true)
	defer ledA.SetProcHook(nil)
	ledA.SetProcHook(sabotageHook(t, ledA, hiA.fix, h[1], h[2]))
	var traceA []moveStep
	movesA := migrateScoped(ledA, v, assignA, LoadResidualMIPS, 0, ScopeMostLoaded, hiA, false, &traceA, nil)

	ledB, _, assignB, _ := migrationFixture(t, 100, 10)
	ledB.SetProcHook(sabotageHook(t, ledB, nil, h[1], h[2]))
	defer ledB.SetProcHook(nil)
	var traceB []moveStep
	movesB := migrateScoped(ledB, v, assignB, LoadResidualMIPS, 0, ScopeMostLoaded, nil, false, &traceB, nil)

	if movesA != movesB || !slices.Equal(traceA, traceB) {
		t.Fatalf("live index diverged from per-attempt sort:\n indexed   %d moves %v\n unindexed %d moves %v",
			movesA, traceA, movesB, traceB)
	}
	if !slices.Equal(assignA, assignB) {
		t.Fatalf("assignments diverge: %v vs %v", assignA, assignB)
	}
	if !slices.Equal(ledA.ResidualProcAll(), ledB.ResidualProcAll()) {
		t.Fatalf("residuals diverge: %v vs %v", ledA.ResidualProcAll(), ledB.ResidualProcAll())
	}
	want := []moveStep{{guest: 0, from: h[0], to: h[2]}, {guest: 0, from: h[2], to: h[3]}}
	if !slices.Equal(traceA, want) {
		t.Fatalf("trace %v, want %v", traceA, want)
	}
}

// TestQuickMigrateExactMatchesIncrementalSequences pins the exact
// (full-recompute) and incremental (running Σx/Σx²) stage-2 modes to
// identical move *sequences* on random workloads — not merely final
// objectives within a tolerance. The shared ImprovementEps threshold is
// what makes this hold: without it, FP noise near zero lets one mode
// accept a move the other rejects, and the sequences fork.
func TestQuickMigrateExactMatchesIncrementalSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nHosts := 3 + rng.Intn(6)
		specs := workload.GenerateHosts(workload.ClusterParams{
			Hosts:   nHosts,
			ProcMin: 500, ProcMax: 3000,
			MemMin: 512, MemMax: 4096,
			StorMin: 100, StorMax: 1000,
		}, rng)
		c, err := topology.Star(specs, 1000, 5)
		if err != nil {
			return false
		}
		v := workload.GenerateEnv(workload.VirtualParams{
			Guests:  1 + rng.Intn(3*nHosts),
			Density: rng.Float64() * 0.4,
			ProcMin: 10, ProcMax: 200,
			MemMin: 16, MemMax: 256,
			StorMin: 1, StorMax: 50,
			BWMin: 0.1, BWMax: 5,
			LatMin: 20, LatMax: 80,
		}, rng)

		// Deliberately unbalanced initial placement: each guest goes to
		// the first fitting host from a random start, so stage 2 has real
		// work to do.
		ledA, err := cluster.NewLedger(c, cluster.VMMOverhead{})
		if err != nil {
			return false
		}
		hosts := c.HostNodes()
		assignA := make([]graph.NodeID, v.NumGuests())
		for g := 0; g < v.NumGuests(); g++ {
			guest := v.Guest(virtual.GuestID(g))
			start := rng.Intn(len(hosts))
			placed := false
			for k := 0; k < len(hosts) && !placed; k++ {
				n := hosts[(start+k)%len(hosts)]
				if ledA.Fits(n, guest.Mem, guest.Stor) {
					if err := ledA.ReserveGuest(n, guest.Proc, guest.Mem, guest.Stor); err != nil {
						return false
					}
					assignA[g] = n
					placed = true
				}
			}
			if !placed {
				return true // infeasible draw; nothing to compare
			}
		}
		ledB := ledA.Clone()
		assignB := slices.Clone(assignA)
		scope := ScopeMostLoaded
		if seed%2 == 0 {
			scope = ScopeAllHosts
		}

		var incTrace, exactTrace []moveStep
		incMoves := migrateScoped(ledA, v, assignA, LoadResidualMIPS, 0, scope, nil, false, &incTrace, nil)
		exactMoves := migrateScoped(ledB, v, assignB, LoadResidualMIPS, 0, scope, nil, true, &exactTrace, nil)
		if incMoves != exactMoves || !slices.Equal(incTrace, exactTrace) {
			t.Logf("seed %d: incremental %d moves %v, exact %d moves %v",
				seed, incMoves, incTrace, exactMoves, exactTrace)
			return false
		}
		return slices.Equal(assignA, assignB)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConsolidateIndexedMatchesNil checks that consolidation with a
// live host index attached reaches the same assignments, emptied count
// and residuals as the hi == nil path on random workloads: the best-fit
// receiver key (slack, node) is a total order, so walking the index's
// slice instead of ranging the onHost map must not change the winner.
func TestQuickConsolidateIndexedMatchesNil(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nHosts := 3 + rng.Intn(6)
		specs := workload.GenerateHosts(workload.ClusterParams{
			Hosts:   nHosts,
			ProcMin: 500, ProcMax: 3000,
			MemMin: 512, MemMax: 4096,
			StorMin: 100, StorMax: 1000,
		}, rng)
		c, err := topology.Star(specs, 1000, 5)
		if err != nil {
			return false
		}
		v := workload.GenerateEnv(workload.VirtualParams{
			Guests:  1 + rng.Intn(2*nHosts),
			Density: rng.Float64() * 0.3,
			ProcMin: 10, ProcMax: 100,
			MemMin: 16, MemMax: 512,
			StorMin: 1, StorMax: 50,
			BWMin: 0.1, BWMax: 5,
			LatMin: 20, LatMax: 80,
		}, rng)

		ledA, err := cluster.NewLedger(c, cluster.VMMOverhead{})
		if err != nil {
			return false
		}
		hosts := c.HostNodes()
		assignA := make([]graph.NodeID, v.NumGuests())
		for g := 0; g < v.NumGuests(); g++ {
			guest := v.Guest(virtual.GuestID(g))
			start := rng.Intn(len(hosts))
			placed := false
			for k := 0; k < len(hosts) && !placed; k++ {
				n := hosts[(start+k)%len(hosts)]
				if ledA.Fits(n, guest.Mem, guest.Stor) {
					if err := ledA.ReserveGuest(n, guest.Proc, guest.Mem, guest.Stor); err != nil {
						return false
					}
					assignA[g] = n
					placed = true
				}
			}
			if !placed {
				return true
			}
		}
		ledB := ledA.Clone()
		assignB := slices.Clone(assignA)

		hi := newHostIndex(ledA, true)
		emptiedA := consolidateIndexed(ledA, v, assignA, 0, hi)
		ledA.SetProcHook(nil)
		emptiedB := consolidateIndexed(ledB, v, assignB, 0, nil)

		if emptiedA != emptiedB || !slices.Equal(assignA, assignB) {
			t.Logf("seed %d: indexed emptied %d -> %v, nil emptied %d -> %v",
				seed, emptiedA, assignA, emptiedB, assignB)
			return false
		}
		return slices.Equal(ledA.ResidualProcAll(), ledB.ResidualProcAll())
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
