package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/stats"
)

// objectiveTolerance is the acceptance bound of the incremental Eq. (10)
// objective: the Σ/Σ² accumulators must stay within 1e-9 relative error
// of the exact two-pass recompute for arbitrarily long update sequences.
func objectiveTolerance(exact float64) float64 {
	return 1e-9 * math.Max(1, exact)
}

// Property: the ledger's running Σ/Σ² objective matches stats.PopStdDev
// of the residual vector after every operation of a seeded chaos
// sequence — reservations, releases, migrations (with their O(1)
// DeltaStdDev what-if verified against the realised change) and clones.
func TestQuickObjectiveMatchesExact(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1000, 5)
	}
	hosts := []Host{
		{Node: 0, Proc: 3000, Mem: 4096, Stor: 500},
		{Node: 1, Proc: 1500, Mem: 4096, Stor: 500},
		{Node: 2, Proc: 1000, Mem: 4096, Stor: 500},
		{Node: 3, Proc: 2500, Mem: 4096, Stor: 500},
		{Node: 4, Proc: 2000, Mem: 4096, Stor: 500},
		{Node: 5, Proc: 1200, Mem: 4096, Stor: 500},
	}
	c, err := New(g, hosts)
	if err != nil {
		t.Fatal(err)
	}

	check := func(led *Ledger, what string, op int) bool {
		exact := stats.PopStdDev(led.ResidualProcAll())
		inc := led.ObjectiveStdDev()
		if math.Abs(inc-exact) > objectiveTolerance(exact) {
			t.Logf("op%d %s: incremental %.15g vs exact %.15g", op, what, inc, exact)
			return false
		}
		return true
	}

	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		led, err := NewLedger(c, VMMOverhead{})
		if err != nil {
			return false
		}

		// Each placed guest is remembered so it can be released or
		// migrated later; proc amounts are irregular floats on purpose,
		// so the accumulators see real cancellation.
		type res struct {
			node graph.NodeID
			proc float64
		}
		var placed []res
		ops := 40 + int(opsRaw)%120
		for op := 0; op < ops; op++ {
			switch rng.Intn(4) {
			case 0, 1: // place
				node := hosts[rng.Intn(len(hosts))].Node
				proc := 1 + rng.Float64()*200
				if led.ResidualProc(node) < proc {
					continue
				}
				if err := led.ReserveGuest(node, proc, 1, 0.01); err != nil {
					continue
				}
				placed = append(placed, res{node, proc})
			case 2: // release
				if len(placed) == 0 {
					continue
				}
				i := rng.Intn(len(placed))
				led.ReleaseGuest(placed[i].node, placed[i].proc, 1, 0.01)
				placed = append(placed[:i], placed[i+1:]...)
			case 3: // migrate, verifying the O(1) what-if first
				if len(placed) == 0 {
					continue
				}
				i := rng.Intn(len(placed))
				r := placed[i]
				dest := hosts[rng.Intn(len(hosts))].Node
				if dest == r.node || led.ResidualProc(dest) < r.proc {
					continue
				}
				predicted := led.ObjectiveStdDev() + led.DeltaStdDev(r.node, dest, r.proc)
				led.ReleaseGuest(r.node, r.proc, 1, 0.01)
				if err := led.ReserveGuest(dest, r.proc, 1, 0.01); err != nil {
					// Roll the move back; the what-if promised nothing
					// about feasibility.
					if err := led.ReserveGuest(r.node, r.proc, 1, 0.01); err != nil {
						return false
					}
					continue
				}
				placed[i].node = dest
				realized := led.ObjectiveStdDev()
				if math.Abs(predicted-realized) > objectiveTolerance(realized) {
					t.Logf("op%d migrate: DeltaStdDev predicted %.15g, realized %.15g", op, predicted, realized)
					return false
				}
			}
			if !check(led, "mutate", op) {
				return false
			}
			// A clone must carry the accumulators, not just the vectors.
			if op%16 == 7 && !check(led.Clone(), "clone", op) {
				return false
			}
		}

		// Releasing everything must return the accumulators to the primed
		// baseline along with the vectors.
		for _, r := range placed {
			led.ReleaseGuest(r.node, r.proc, 1, 0.01)
		}
		return check(led, "teardown", ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
