package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property: any sequence of guest reservations followed by their releases
// (in any order) restores every residual exactly; same for bandwidth.
func TestQuickLedgerConservation(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1000, 5)
	g.AddEdge(1, 2, 1000, 5)
	g.AddEdge(2, 3, 1000, 5)
	c, err := New(g, []Host{
		{Node: 0, Proc: 2000, Mem: 2048, Stor: 2000},
		{Node: 1, Proc: 1500, Mem: 1024, Stor: 1500},
		{Node: 2, Proc: 1000, Mem: 3072, Stor: 1000},
		{Node: 3, Proc: 2500, Mem: 2048, Stor: 2500},
	})
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		led, err := NewLedger(c, VMMOverhead{})
		if err != nil {
			return false
		}
		before := led.ResidualProcAll()
		memBefore := []int64{led.ResidualMem(0), led.ResidualMem(1), led.ResidualMem(2), led.ResidualMem(3)}
		bwBefore := []float64{led.ResidualBandwidth(0), led.ResidualBandwidth(1), led.ResidualBandwidth(2)}

		type res struct {
			node graph.NodeID
			proc float64
			mem  int64
			stor float64
		}
		type bwres struct {
			path graph.Path
			bw   float64
		}
		var guests []res
		var paths []bwres
		ops := 1 + int(opsRaw)%20
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 {
				r := res{
					node: graph.NodeID(rng.Intn(4)),
					proc: rng.Float64() * 500,
					mem:  int64(rng.Intn(512)),
					stor: rng.Float64() * 300,
				}
				if led.ReserveGuest(r.node, r.proc, r.mem, r.stor) == nil {
					guests = append(guests, r)
				}
			} else {
				start := rng.Intn(3)
				p := graph.Path{
					Nodes: []graph.NodeID{graph.NodeID(start), graph.NodeID(start + 1)},
					Edges: []int{start},
				}
				b := bwres{path: p, bw: rng.Float64() * 100}
				if led.ReserveBandwidth(b.path, b.bw) == nil {
					paths = append(paths, b)
				}
			}
		}
		// Release in shuffled order.
		rng.Shuffle(len(guests), func(i, j int) { guests[i], guests[j] = guests[j], guests[i] })
		rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
		for _, r := range guests {
			led.ReleaseGuest(r.node, r.proc, r.mem, r.stor)
		}
		for _, b := range paths {
			led.ReleaseBandwidth(b.path, b.bw)
		}

		after := led.ResidualProcAll()
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-6 {
				return false
			}
		}
		for i, m := range memBefore {
			if led.ResidualMem(graph.NodeID(i)) != m {
				return false
			}
		}
		for i, b := range bwBefore {
			if math.Abs(led.ResidualBandwidth(i)-b) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a clone is fully independent — no operation on the clone is
// visible in the original and vice versa.
func TestQuickLedgerCloneIndependence(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 500, 5)
	c, err := New(g, []Host{
		{Node: 0, Proc: 2000, Mem: 2048, Stor: 2000},
		{Node: 1, Proc: 1000, Mem: 1024, Stor: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewLedger(c, VMMOverhead{})
		if err != nil {
			return false
		}
		_ = a.ReserveGuest(0, rng.Float64()*100, int64(rng.Intn(256)), rng.Float64()*100)
		b := a.Clone()
		snapshot := a.ResidualProcAll()
		_ = b.ReserveGuest(1, rng.Float64()*100, int64(rng.Intn(256)), rng.Float64()*100)
		b.Quarantine(0)
		b.CutEdge(0)
		after := a.ResidualProcAll()
		for i := range snapshot {
			if snapshot[i] != after[i] {
				return false
			}
		}
		return !a.Quarantined(0) && !a.EdgeCut(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
