package cluster

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// Txn accumulates the net reservations of one mapping attempt — guest
// demands per host and path bandwidth per edge — computed off-lock
// against a snapshot ledger, so a session can validate them against the
// live residuals and apply them atomically. It is the commit half of the
// optimistic admission pipeline (snapshot → map → validate-and-commit):
// the mapping speculates on a private clone, and Commit decides whether
// the speculation still fits reality.
//
// A Txn aggregates: adding two guests on the same host or two paths over
// the same edge accumulates their demands, exactly as the serialized
// reservations would. It is not safe for concurrent use.
//
// Storage is dense and epoch-stamped so a Txn can be Reset and reused
// without allocating: demands live in per-host and per-edge arrays
// sized once to the cluster, a row is live only when its epoch stamp
// matches the current epoch, and the touched rows are tracked in two
// compact lists. The admission hot path keeps transactions in a pool
// and reuses them for the life of the process.
type Txn struct {
	c *Cluster

	epoch     uint32
	hostEpoch []uint32 // by host index; row live when == epoch
	edgeEpoch []uint32 // by edge ID; row live when == epoch

	hproc []float64 // by host index
	hmem  []int64   // by host index
	hstor []float64 // by host index
	ebw   []float64 // by edge ID

	hostList []int32 // touched host indices, insertion order
	edgeList []int32 // touched edge IDs, insertion order
}

// NewTxn returns an empty transaction against this ledger's cluster.
// The transaction's arrays are sized to the cluster once; Reset reuses
// them, so hot paths should pool and reset rather than reallocate.
func (l *Ledger) NewTxn() *Txn {
	return &Txn{
		c:         l.c,
		epoch:     1,
		hostEpoch: make([]uint32, len(l.c.hosts)),
		edgeEpoch: make([]uint32, l.c.net.NumEdges()),
		hproc:     make([]float64, len(l.c.hosts)),
		hmem:      make([]int64, len(l.c.hosts)),
		hstor:     make([]float64, len(l.c.hosts)),
		ebw:       make([]float64, l.c.net.NumEdges()),
		hostList:  make([]int32, 0, 64),
		edgeList:  make([]int32, 0, 256),
	}
}

// Reset empties the transaction for reuse without releasing its
// storage: the epoch stamp advances, invalidating every row in O(1).
func (t *Txn) Reset() {
	t.epoch++
	if t.epoch == 0 { // wrapped: stale stamps could alias, scrub them
		clear(t.hostEpoch)
		clear(t.edgeEpoch)
		t.epoch = 1
	}
	t.hostList = t.hostList[:0]
	t.edgeList = t.edgeList[:0]
}

// Cluster returns the cluster the transaction was built for.
func (t *Txn) Cluster() *Cluster { return t.c }

// AddGuest records a guest's demands on the host at node.
func (t *Txn) AddGuest(node graph.NodeID, proc float64, mem int64, stor float64) {
	i := t.c.hostIdx(node)
	if t.hostEpoch[i] != t.epoch {
		t.hostEpoch[i] = t.epoch
		t.hproc[i], t.hmem[i], t.hstor[i] = 0, 0, 0
		t.hostList = append(t.hostList, int32(i))
	}
	t.hproc[i] += proc
	t.hmem[i] += mem
	t.hstor[i] += stor
}

// AddPath records bw Mbps on every edge of path. The trivial (intra-host)
// path records nothing.
func (t *Txn) AddPath(p graph.Path, bw float64) {
	for _, eid := range p.Edges {
		if t.edgeEpoch[eid] != t.epoch {
			t.edgeEpoch[eid] = t.epoch
			t.ebw[eid] = 0
			t.edgeList = append(t.edgeList, int32(eid))
		}
		t.ebw[eid] += bw
	}
}

// Hosts returns the number of distinct hosts the transaction touches.
func (t *Txn) Hosts() int { return len(t.hostList) }

// Edges returns the number of distinct edges the transaction touches.
func (t *Txn) Edges() int { return len(t.edgeList) }

// Commit validates every reservation in t against the live residuals —
// quarantine state, memory and storage per host (Eq. 2, Eq. 3), cut
// state and aggregate bandwidth per edge (Eq. 9) — and applies them all,
// or returns an error describing the first conflict while leaving the
// ledger untouched. Residual CPU is applied but never validated, exactly
// like ReserveGuest (§3.2 treats it as the optimisation variable, not a
// constraint). Hosts and edges are checked in ascending index order so a
// given conflict always produces the same error, and applied in the same
// order so WAL replay reproduces the floating-point results bit for bit.
//
// Commit is the validate-and-apply entry point of the optimistic
// admission pipeline: callers hold the owning session's lock (or own
// the ledger outright), as on every other ledger mutation. It sorts the
// touched-row lists in place but does not Reset the transaction.
// Journal discipline: proc changes flow through applyProc (which
// journals the host row) and every edge write is followed by jEdge, so
// copy-on-write snapshots observe the whole commit.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) Commit(t *Txn) error {
	if t.c != l.c {
		return fmt.Errorf("cluster: transaction built for a different cluster")
	}
	slices.Sort(t.hostList)
	for _, hi := range t.hostList {
		i := int(hi)
		node := l.c.hosts[i].Node
		if l.quarantined[i] {
			return fmt.Errorf("cluster: host node %d is quarantined", node)
		}
		if l.mem[i] < t.hmem[i] {
			return fmt.Errorf("cluster: host node %d: memory %dMB short of %dMB demand", node, l.mem[i], t.hmem[i])
		}
		if l.stor[i] < t.hstor[i] {
			return fmt.Errorf("cluster: host node %d: storage %.1fGB short of %.1fGB demand", node, l.stor[i], t.hstor[i])
		}
	}
	slices.Sort(t.edgeList)
	for _, ei := range t.edgeList {
		e := int(ei)
		if l.cutEdges[e] {
			return fmt.Errorf("cluster: edge %d is cut", e)
		}
		if l.bw[e] < t.ebw[e] {
			return fmt.Errorf("cluster: edge %d residual %.3fMbps short of %.3fMbps demand", e, l.bw[e], t.ebw[e])
		}
	}
	for _, hi := range t.hostList {
		i := int(hi)
		l.applyProc(i, -t.hproc[i])
		l.mem[i] -= t.hmem[i]
		l.stor[i] -= t.hstor[i]
	}
	for _, ei := range t.edgeList {
		e := int(ei)
		l.bw[e] -= t.ebw[e]
		l.jEdge(e)
	}
	return nil
}
