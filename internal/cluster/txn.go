package cluster

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Txn accumulates the net reservations of one mapping attempt — guest
// demands per host and path bandwidth per edge — computed off-lock
// against a snapshot ledger, so a session can validate them against the
// live residuals and apply them atomically. It is the commit half of the
// optimistic admission pipeline (snapshot → map → validate-and-commit):
// the mapping speculates on a private clone, and Commit decides whether
// the speculation still fits reality.
//
// A Txn aggregates: adding two guests on the same host or two paths over
// the same edge accumulates their demands, exactly as the serialized
// reservations would. It is not safe for concurrent use.
type Txn struct {
	c     *Cluster
	hosts map[int]hostDemand // by host index
	edges map[int]float64    // bandwidth demand by edge ID
}

type hostDemand struct {
	proc float64
	mem  int64
	stor float64
}

// NewTxn returns an empty transaction against this ledger's cluster.
func (l *Ledger) NewTxn() *Txn {
	return &Txn{
		c:     l.c,
		hosts: make(map[int]hostDemand),
		edges: make(map[int]float64),
	}
}

// AddGuest records a guest's demands on the host at node.
func (t *Txn) AddGuest(node graph.NodeID, proc float64, mem int64, stor float64) {
	i := t.c.hostIdx(node)
	d := t.hosts[i]
	d.proc += proc
	d.mem += mem
	d.stor += stor
	t.hosts[i] = d
}

// AddPath records bw Mbps on every edge of path. The trivial (intra-host)
// path records nothing.
func (t *Txn) AddPath(p graph.Path, bw float64) {
	for _, eid := range p.Edges {
		t.edges[eid] += bw
	}
}

// Hosts returns the number of distinct hosts the transaction touches.
func (t *Txn) Hosts() int { return len(t.hosts) }

// Edges returns the number of distinct edges the transaction touches.
func (t *Txn) Edges() int { return len(t.edges) }

// Commit validates every reservation in t against the live residuals —
// quarantine state, memory and storage per host (Eq. 2, Eq. 3), cut
// state and aggregate bandwidth per edge (Eq. 9) — and applies them all,
// or returns an error describing the first conflict while leaving the
// ledger untouched. Residual CPU is applied but never validated, exactly
// like ReserveGuest (§3.2 treats it as the optimisation variable, not a
// constraint). Hosts and edges are checked in ascending index order so a
// given conflict always produces the same error.
//
// Commit is the validate-and-apply entry point of the optimistic
// admission pipeline: callers hold the owning session's lock (or own
// the ledger outright), as on every other ledger mutation.
//
//hmn:locked session
func (l *Ledger) Commit(t *Txn) error {
	if t.c != l.c {
		return fmt.Errorf("cluster: transaction built for a different cluster")
	}
	hostIdx := make([]int, 0, len(t.hosts))
	for i := range t.hosts {
		hostIdx = append(hostIdx, i)
	}
	sort.Ints(hostIdx)
	for _, i := range hostIdx {
		d := t.hosts[i]
		node := l.c.hosts[i].Node
		if l.quarantined[i] {
			return fmt.Errorf("cluster: host node %d is quarantined", node)
		}
		if l.mem[i] < d.mem {
			return fmt.Errorf("cluster: host node %d: memory %dMB short of %dMB demand", node, l.mem[i], d.mem)
		}
		if l.stor[i] < d.stor {
			return fmt.Errorf("cluster: host node %d: storage %.1fGB short of %.1fGB demand", node, l.stor[i], d.stor)
		}
	}
	edgeIdx := make([]int, 0, len(t.edges))
	for e := range t.edges {
		edgeIdx = append(edgeIdx, e)
	}
	sort.Ints(edgeIdx)
	for _, e := range edgeIdx {
		if l.cutEdges[e] {
			return fmt.Errorf("cluster: edge %d is cut", e)
		}
		if l.bw[e] < t.edges[e] {
			return fmt.Errorf("cluster: edge %d residual %.3fMbps short of %.3fMbps demand", e, l.bw[e], t.edges[e])
		}
	}
	for _, i := range hostIdx {
		d := t.hosts[i]
		l.applyProc(i, -d.proc)
		l.mem[i] -= d.mem
		l.stor[i] -= d.stor
	}
	for _, e := range edgeIdx {
		l.bw[e] -= t.edges[e]
	}
	return nil
}
