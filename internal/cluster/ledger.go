package cluster

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// ErrOverheadExceedsCapacity is returned by NewLedger when the VMM
// overhead alone does not fit on some host.
var ErrOverheadExceedsCapacity = errors.New("cluster: VMM overhead exceeds a host's capacity")

// Ledger tracks the residual resources of a cluster while a mapping is
// being constructed: per-host CPU, memory and storage, and per-edge
// bandwidth. The VMM overhead is deducted once at construction (§3.1).
//
// Memory and storage are hard constraints (Eq. 2 and Eq. 3): Fits and
// ReserveGuest enforce them. CPU is deliberately *not* a constraint —
// it is the quantity the objective function balances (§3.2) — so residual
// CPU may go negative. Bandwidth is a hard constraint per physical link
// (Eq. 9).
//
// A Ledger belongs to a single mapping attempt and is not safe for
// concurrent use; concurrent experiments each build their own. It has no
// lock of its own, so its mutable state is annotated with the external
// capability token "session": the caller must either hold the owning
// *core.Session's mutex or be the ledger's sole owner (a private clone,
// a one-shot mapping attempt). Methods marked //hmn:locked session carry
// that obligation to their callers.
type Ledger struct {
	c *Cluster
	// residual CPU per host index (may go negative)
	//hmn:journaled
	proc []float64 //hmn:guardedby session
	// residual memory per host index
	//hmn:journaled
	mem []int64 //hmn:guardedby session
	// residual storage per host index
	//hmn:journaled
	stor []float64 //hmn:guardedby session
	// residual bandwidth per edge ID
	//hmn:journaled
	bw []float64 //hmn:guardedby session
	// per host index: no new guests accepted
	//hmn:journaled
	quarantined []bool //hmn:guardedby session
	// per edge ID: carries no new traffic
	//hmn:journaled
	cutEdges []bool //hmn:guardedby session
	// moved by CutEdge/RestoreEdge; keys derived caches. Zero is reserved
	// for the canonical no-cuts topology so restoring the last cut edge
	// returns to it and re-warms generation-keyed caches.
	topoGen uint64 //hmn:guardedby session
	// count of currently cut edges and the monotonic generation allocator
	// behind topoGen; see CutEdge/RestoreEdge.
	cutCount int    //hmn:guardedby session
	genSeq   uint64 //hmn:guardedby session

	// Running Σx and Σx² of the residual-CPU vector (Kahan-compensated),
	// maintained by every proc mutation so the Eq. (10) objective and the
	// Migration stage's what-if evaluations are O(1) instead of O(hosts).
	sumProc   kahanSum //hmn:guardedby session
	sumProcSq kahanSum //hmn:guardedby session

	// procHook, when set, observes every single-host residual-CPU change
	// (by dense host index, after the ledger is updated). The Hosting
	// stage's incremental host order hangs off it. Clones drop the hook:
	// it closes over state owned by this ledger's consumer.
	procHook func(host int) //hmn:guardedby session

	// Write journal backing copy-on-write snapshots (snapshot.go). When
	// enabled, every per-host and per-edge mutation appends a packed
	// entry so SyncFrom can re-point a stale snapshot at this ledger by
	// copying only the rows that changed instead of every row. jGen
	// counts journal truncations: a snapshot pinned before a truncation
	// can no longer trust the journal and falls back to a full CopyFrom.
	jEnabled bool    //hmn:guardedby session
	jGen     uint64  //hmn:guardedby session
	jEntries []int32 //hmn:guardedby session
	// jOverflow records that this ledger's own journal truncated since
	// its last sync, losing the record of its own speculative writes.
	jOverflow bool //hmn:guardedby session
	// syncGen/syncOff pin a snapshot ledger to a position in its source
	// ledger's journal: entries at or past syncOff (while the source is
	// still on generation syncGen) are exactly the rows the source
	// changed since this snapshot last matched it.
	syncGen uint64 //hmn:guardedby session
	syncOff int    //hmn:guardedby session
}

// kahanSum is a compensated float64 accumulator: it keeps the running
// Σ of many small deltas within a few ulps of the exact sum, so the
// incremental objective stays within the 1e-9 band the property tests
// cross-check against the two-pass stats.PopStdDev recompute.
type kahanSum struct{ s, c float64 }

func (k *kahanSum) add(x float64) {
	y := x - k.c
	t := k.s + y
	k.c = (t - k.s) - y
	k.s = t
}

// NewLedger returns a ledger initialised to each host's capacity minus the
// VMM overhead and each edge's installed bandwidth. It fails with
// ErrOverheadExceedsCapacity if any host cannot even hold the VMM.
func NewLedger(c *Cluster, overhead VMMOverhead) (*Ledger, error) {
	l := &Ledger{
		c:           c,
		proc:        make([]float64, len(c.hosts)),
		mem:         make([]int64, len(c.hosts)),
		stor:        make([]float64, len(c.hosts)),
		bw:          make([]float64, c.net.NumEdges()),
		quarantined: make([]bool, len(c.hosts)),
		cutEdges:    make([]bool, c.net.NumEdges()),
	}
	for i, h := range c.hosts {
		l.proc[i] = h.Proc - overhead.Proc
		l.mem[i] = h.Mem - overhead.Mem
		l.stor[i] = h.Stor - overhead.Stor
		if l.mem[i] < 0 || l.stor[i] < 0 || l.proc[i] < 0 {
			return nil, fmt.Errorf("%w: host %q (node %d)", ErrOverheadExceedsCapacity, h.Name, h.Node)
		}
	}
	for _, e := range c.net.Edges() {
		l.bw[e.ID] = e.Bandwidth
	}
	for _, p := range l.proc {
		l.sumProc.add(p)
		l.sumProcSq.add(p * p)
	}
	return l, nil
}

// applyProc is the single funnel for residual-CPU changes: it shifts the
// residual of dense host index i by delta, maintains the running Σx/Σx²,
// and notifies the proc hook. Every proc mutation (ReserveGuest,
// ReleaseGuest, Txn commit) goes through it so the incremental objective
// and any attached host order can never drift from the ledger.
//
//hmn:locked session
//hmn:journalmutator
//hmn:noalloc
func (l *Ledger) applyProc(i int, delta float64) {
	old := l.proc[i]
	nw := old + delta
	l.proc[i] = nw
	l.sumProc.add(delta)
	l.sumProcSq.add(nw*nw - old*old)
	l.jHost(i)
	if l.procHook != nil {
		l.procHook(i)
	}
}

// SetProcHook installs fn to observe every single-host residual-CPU
// change, called with the dense host index after the ledger has been
// updated. Passing nil detaches. At most one hook is active; consumers
// that attach one (the Hosting stage's incremental host order) must
// detach it when their mapping attempt ends. Clones never inherit it.
//
//hmn:locked session
func (l *Ledger) SetProcHook(fn func(host int)) { l.procHook = fn }

// ObjectiveStdDev returns the load-balance objective of Eq. (10) — the
// population standard deviation of the residual-CPU vector — in O(1)
// from the running sums.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) ObjectiveStdDev() float64 {
	return l.stdDevFromSums(l.sumProcSq.s)
}

// DeltaStdDev returns the change the Eq. (10) objective would undergo if
// a guest demanding mips CPU moved from the host at origin to the host
// at dest: negative means the move improves load balance. It is the O(1)
// what-if behind the Migration stage: Σx is invariant under a move (the
// origin residual gains exactly what the dest residual loses) and Σx²
// shifts by 2·mips·(origin−dest) + 2·mips², so no ledger mutation or
// full recompute is needed per candidate.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) DeltaStdDev(origin, dest graph.NodeID, mips float64) float64 {
	po := l.proc[l.c.hostIdx(origin)]
	pd := l.proc[l.c.hostIdx(dest)]
	sumSq := l.sumProcSq.s
	after := sumSq + 2*mips*(po-pd) + 2*mips*mips
	return l.stdDevFromSums(after) - l.stdDevFromSums(sumSq)
}

// DeltaStdDevSwap returns the change the Eq. (10) objective would
// undergo if a guest demanding mipsA CPU on host a and a guest demanding
// mipsB CPU on host b exchanged hosts: negative means the swap improves
// load balance. An exchange shifts a net mipsA−mipsB of demand from a to
// b — a gains back mipsA and gives up mipsB, b the reverse — so it
// reduces to the single-move what-if. O(1), no mutation: destination-
// swap candidate scoring (Avin/Dunay/Schmid, arXiv:1309.5826) calls
// this once per pair.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) DeltaStdDevSwap(a, b graph.NodeID, mipsA, mipsB float64) float64 {
	return l.DeltaStdDev(a, b, mipsA-mipsB)
}

// DeltaStdDevShift returns the change the Eq. (10) objective would
// undergo if the residual CPU of each hosts[i] shifted by deltas[i]
// MIPS. Hosts must be distinct; a single guest move contributes its
// demand as a positive delta on the origin and the same negative delta
// on the destination. O(len(hosts)), no mutation — the migrate commit
// funnel scores a whole multi-move plan with one call before deciding
// whether it still improves the live ledger.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) DeltaStdDevShift(hosts []graph.NodeID, deltas []float64) float64 {
	sum, sumSq := l.sumProc.s, l.sumProcSq.s
	for i, n := range hosts {
		p := l.proc[l.c.hostIdx(n)]
		d := deltas[i]
		sum += d
		sumSq += 2*p*d + d*d
	}
	return l.stdDevFromSumPair(sum, sumSq) - l.ObjectiveStdDev()
}

// stdDevFromSums evaluates the population standard deviation from Σx²,
// using the ledger's running Σx. Negative variances from floating-point
// cancellation clamp to zero.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) stdDevFromSums(sumSq float64) float64 {
	return l.stdDevFromSumPair(l.sumProc.s, sumSq)
}

// stdDevFromSumPair evaluates the population standard deviation from an
// explicit (Σx, Σx²) pair, for what-ifs where the total residual is not
// invariant. Negative variances from floating-point cancellation clamp
// to zero.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) stdDevFromSumPair(sum, sumSq float64) float64 {
	n := float64(len(l.proc))
	if n == 0 {
		return 0
	}
	mean := sum / n
	v := sumSq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Cluster returns the cluster this ledger accounts for.
func (l *Ledger) Cluster() *Cluster { return l.c }

// Clone returns an independent copy of the ledger, used for what-if
// evaluation during the Migration stage and by retrying baselines. The
// proc hook is deliberately not inherited: it closes over structures
// owned by whoever attached it to the source ledger.
//
//hmn:locked session
func (l *Ledger) Clone() *Ledger {
	return &Ledger{
		c:           l.c,
		proc:        append([]float64(nil), l.proc...),
		mem:         append([]int64(nil), l.mem...),
		stor:        append([]float64(nil), l.stor...),
		bw:          append([]float64(nil), l.bw...),
		quarantined: append([]bool(nil), l.quarantined...),
		cutEdges:    append([]bool(nil), l.cutEdges...),
		topoGen:     l.topoGen,
		cutCount:    l.cutCount,
		genSeq:      l.genSeq,
		sumProc:     l.sumProc,
		sumProcSq:   l.sumProcSq,
	}
}

// Fits reports whether a guest demanding mem MB and stor GB satisfies the
// hard constraints (Eq. 2, Eq. 3) on the host at node. CPU is not checked
// — per §3.2 it is the optimisation variable, not a constraint.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) Fits(node graph.NodeID, mem int64, stor float64) bool {
	i := l.c.hostIdx(node)
	return !l.quarantined[i] && l.mem[i] >= mem && l.stor[i] >= stor
}

// Quarantine marks the host at node as accepting no further guests:
// Fits reports false and ReserveGuest refuses, while resources already
// reserved there remain accounted until released. Mapping heuristics
// driven by Fits thus route around the host. Used to model host
// failures and administrative draining.
//
// Quarantine a host between mapping attempts, not while one is running:
// the Migration stage assumes it can restore a reservation it just
// released on the same host.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) Quarantine(node graph.NodeID) {
	i := l.c.hostIdx(node)
	l.quarantined[i] = true
	l.jHost(i)
}

// Quarantined reports whether the host at node is quarantined.
//
//hmn:locked session
func (l *Ledger) Quarantined(node graph.NodeID) bool {
	return l.quarantined[l.c.hostIdx(node)]
}

// Unquarantine readmits the host at node.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) Unquarantine(node graph.NodeID) {
	i := l.c.hostIdx(node)
	l.quarantined[i] = false
	l.jHost(i)
}

// ReserveGuest deducts a guest's demands from the host at node. It returns
// an error (leaving the ledger untouched) when memory or storage would go
// negative; residual CPU is allowed to go negative.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) ReserveGuest(node graph.NodeID, proc float64, mem int64, stor float64) error {
	i := l.c.hostIdx(node)
	if l.quarantined[i] {
		return fmt.Errorf("cluster: host node %d is quarantined", node)
	}
	if l.mem[i] < mem {
		return fmt.Errorf("cluster: host node %d: memory %dMB short of %dMB demand", node, l.mem[i], mem)
	}
	if l.stor[i] < stor {
		return fmt.Errorf("cluster: host node %d: storage %.1fGB short of %.1fGB demand", node, l.stor[i], stor)
	}
	l.applyProc(i, -proc)
	l.mem[i] -= mem
	l.stor[i] -= stor
	return nil
}

// ReleaseGuest returns a guest's demands to the host at node. It is the
// inverse of ReserveGuest and is used when the Migration stage moves a
// guest away.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) ReleaseGuest(node graph.NodeID, proc float64, mem int64, stor float64) {
	i := l.c.hostIdx(node)
	l.applyProc(i, proc)
	l.mem[i] += mem
	l.stor[i] += stor
}

// ResidualProc returns the residual CPU of the host at node in MIPS.
//
//hmn:locked session
func (l *Ledger) ResidualProc(node graph.NodeID) float64 { return l.proc[l.c.hostIdx(node)] }

// ResidualMem returns the residual memory of the host at node in MB.
//
//hmn:locked session
func (l *Ledger) ResidualMem(node graph.NodeID) int64 { return l.mem[l.c.hostIdx(node)] }

// ResidualStor returns the residual storage of the host at node in GB.
//
//hmn:locked session
func (l *Ledger) ResidualStor(node graph.NodeID) float64 { return l.stor[l.c.hostIdx(node)] }

// ResidualProcAll returns a copy of the residual CPU of every host, in
// host declaration order — the rproc vector of Eq. 11 that the objective
// function (Eq. 10) takes the population standard deviation of.
//
//hmn:locked session
func (l *Ledger) ResidualProcAll() []float64 {
	return append([]float64(nil), l.proc...)
}

// ResidualBandwidth returns the residual bandwidth of the given edge,
// or 0 while the edge is cut.
//
//hmn:locked session
func (l *Ledger) ResidualBandwidth(edgeID int) float64 {
	if l.cutEdges[edgeID] {
		return 0
	}
	return l.bw[edgeID]
}

// CutEdge marks a physical link as carrying no new traffic: its residual
// bandwidth reads as zero (so every path search routes around it) and
// ReserveBandwidth refuses paths that cross it. Bandwidth already
// reserved on it stays accounted until released. Models link failures
// and maintenance. Cutting an already-cut edge is a no-op.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) CutEdge(edgeID int) {
	if l.cutEdges[edgeID] {
		return
	}
	l.cutEdges[edgeID] = true
	l.cutCount++
	l.genSeq++
	l.topoGen = l.genSeq
	l.jEdge(edgeID)
}

// EdgeCut reports whether the edge is currently cut.
//
//hmn:locked session
func (l *Ledger) EdgeCut(edgeID int) bool { return l.cutEdges[edgeID] }

// RestoreEdge readmits a previously cut edge. Restoring an edge that is
// not cut is a no-op. When the last cut edge is restored the generation
// returns to the reserved zero value of the no-cuts topology, so caches
// warmed before the failure become valid again instead of being rebuilt.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) RestoreEdge(edgeID int) {
	if !l.cutEdges[edgeID] {
		return
	}
	l.cutEdges[edgeID] = false
	l.cutCount--
	l.jEdge(edgeID)
	if l.cutCount == 0 {
		l.topoGen = 0
		return
	}
	l.genSeq++
	l.topoGen = l.genSeq
}

// TopoGen returns the ledger's topology generation. Generation 0 always
// means "no edges cut"; every state with at least one cut edge gets a
// fresh generation from a monotonic allocator, so two distinct cut sets
// never share one. Caches derived from the routable topology — the
// Networking stage's Dijkstra ar[] tables — key their entries by it, so
// a link failure or restoration invalidates them without any explicit
// registration, and a failure fully healed re-validates the canonical
// tables. Clones inherit the generation of their source; only the
// session's live ledger ever moves it (clones never cut edges), so
// generations from one allocator never alias.
//
//hmn:locked session
func (l *Ledger) TopoGen() uint64 { return l.topoGen }

// BandwidthFunc returns a residual-bandwidth view suitable for the search
// algorithms in internal/graph. The view reads the live ledger: it closes
// over the ledger's backing arrays (which are mutated in place, never
// reallocated), so it reflects reservations made after it was obtained.
//
//hmn:locked session
func (l *Ledger) BandwidthFunc() graph.BandwidthFunc {
	bw, cut := l.bw, l.cutEdges
	return func(edgeID int) float64 {
		if cut[edgeID] {
			return 0
		}
		return bw[edgeID]
	}
}

// ReserveBandwidth deducts bw Mbps from every edge of path, checking all
// edges before modifying any so that a failure leaves the ledger
// untouched. The trivial (intra-host) path reserves nothing.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) ReserveBandwidth(path graph.Path, bw float64) error {
	for _, eid := range path.Edges {
		if l.cutEdges[eid] {
			return fmt.Errorf("cluster: edge %d is cut", eid)
		}
		if l.bw[eid] < bw {
			return fmt.Errorf("cluster: edge %d residual %.3fMbps short of %.3fMbps demand", eid, l.bw[eid], bw)
		}
	}
	for _, eid := range path.Edges {
		l.bw[eid] -= bw
		l.jEdge(eid)
	}
	return nil
}

// ReleaseBandwidth returns bw Mbps to every edge of path; the inverse of
// ReserveBandwidth.
//
//hmn:locked session
//hmn:journalmutator
func (l *Ledger) ReleaseBandwidth(path graph.Path, bw float64) {
	for _, eid := range path.Edges {
		l.bw[eid] += bw
		l.jEdge(eid)
	}
}
