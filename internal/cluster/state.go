package cluster

import "fmt"

// LedgerState is the serializable form of a ledger's mutable state: the
// residual vectors, the degradation flags and the topology-generation
// allocator. It exists for the WAL snapshot layer (internal/wal): a
// ledger restored from a state and then driven by the same canonical
// operation sequence reproduces the original ledger bit-for-bit, because
// every residual is stored verbatim (Go's JSON encoder emits the
// shortest representation that round-trips a float64 exactly).
//
// The Kahan compensation terms of the running Σx/Σx² accumulators are
// deliberately not part of the state: they are rebuilt from the proc
// vector on restore, which keeps the incremental Eq. (10) objective
// within the usual 1e-9 band of the two-pass recompute but may differ
// from the uninterrupted run in the last few ulps. The residual vectors
// themselves — the state that admission decisions read — are exact.
type LedgerState struct {
	Proc        []float64 `json:"proc"`
	Mem         []int64   `json:"mem"`
	Stor        []float64 `json:"stor"`
	BW          []float64 `json:"bw"`
	Quarantined []bool    `json:"quarantined,omitempty"`
	CutEdges    []bool    `json:"cut_edges,omitempty"`
	TopoGen     uint64    `json:"topo_gen,omitempty"`
	CutCount    int       `json:"cut_count,omitempty"`
	GenSeq      uint64    `json:"gen_seq,omitempty"`
}

// State exports the ledger's mutable state for snapshotting.
//
//hmn:locked session
func (l *Ledger) State() LedgerState {
	return LedgerState{
		Proc:        append([]float64(nil), l.proc...),
		Mem:         append([]int64(nil), l.mem...),
		Stor:        append([]float64(nil), l.stor...),
		BW:          append([]float64(nil), l.bw...),
		Quarantined: append([]bool(nil), l.quarantined...),
		CutEdges:    append([]bool(nil), l.cutEdges...),
		TopoGen:     l.topoGen,
		CutCount:    l.cutCount,
		GenSeq:      l.genSeq,
	}
}

// RestoreLedger rebuilds a ledger over c from a snapshotted state. The
// state's vectors must match the cluster's dimensions — a snapshot can
// only be restored against the cluster it was taken from. The Kahan
// accumulators are rebuilt from the restored proc vector (see
// LedgerState).
func RestoreLedger(c *Cluster, st LedgerState) (*Ledger, error) {
	if len(st.Proc) != len(c.hosts) || len(st.Mem) != len(c.hosts) || len(st.Stor) != len(c.hosts) {
		return nil, fmt.Errorf("cluster: ledger state has %d/%d/%d host vectors for %d hosts",
			len(st.Proc), len(st.Mem), len(st.Stor), len(c.hosts))
	}
	if len(st.BW) != c.net.NumEdges() {
		return nil, fmt.Errorf("cluster: ledger state has %d bandwidth entries for %d edges",
			len(st.BW), c.net.NumEdges())
	}
	quarantined := st.Quarantined
	if quarantined == nil {
		quarantined = make([]bool, len(c.hosts))
	}
	cut := st.CutEdges
	if cut == nil {
		cut = make([]bool, c.net.NumEdges())
	}
	if len(quarantined) != len(c.hosts) || len(cut) != c.net.NumEdges() {
		return nil, fmt.Errorf("cluster: ledger state degradation flags do not match the cluster")
	}
	l := &Ledger{
		c:           c,
		proc:        append([]float64(nil), st.Proc...),
		mem:         append([]int64(nil), st.Mem...),
		stor:        append([]float64(nil), st.Stor...),
		bw:          append([]float64(nil), st.BW...),
		quarantined: append([]bool(nil), quarantined...),
		cutEdges:    append([]bool(nil), cut...),
		topoGen:     st.TopoGen,
		cutCount:    st.CutCount,
		genSeq:      st.GenSeq,
	}
	for _, p := range l.proc {
		l.sumProc.add(p)
		l.sumProcSq.add(p * p)
	}
	return l, nil
}
