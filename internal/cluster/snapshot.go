package cluster

// Copy-on-write ledger snapshots for the optimistic admission pipeline.
//
// Session.Map used to deep-clone the whole ledger per attempt: six O(H)
// or O(E) slice copies and six allocations every admission, even when
// the admission touches a dozen hosts on a ten-thousand-edge cluster.
// This file replaces that with a write journal: a ledger with the
// journal enabled appends one packed int32 per mutated host or edge,
// and a snapshot ledger pinned at a journal position can re-match the
// source by copying only the rows either side wrote since the pin —
// its own speculative reservations (reverted) plus the source's
// committed admissions (picked up). The arrays of a snapshot are sized
// once and reused forever, so the steady-state admission path stops
// allocating entirely.
//
// Journal entries pack both entity kinds into one int32: v >= 0 is the
// dense host index v (row: proc/mem/stor/quarantined), v < 0 is the
// edge ID ^v (row: bw/cutEdges). Scalar state — topoGen, cutCount,
// genSeq and the Kahan objective sums — is always copied whole on
// sync; copying every journaled proc row alongside the source's sums
// keeps vector and sums exactly consistent because any row absent from
// both journals is bit-identical in both ledgers by induction.
//
// The journal is bounded: at jCap entries it truncates and bumps jGen
// (and flags jOverflow on the writer itself). Snapshots detect either
// condition and fall back to CopyFrom, a full-width copy into the
// already-sized arrays — still allocation-free, just O(H+E) again. Big
// admissions therefore degrade to exactly the old clone cost while
// small ones pay only for what they touched.

// jCap bounds the write journal. 8192 int32 entries (32 KiB) cover any
// realistic incremental admission; a mapping that writes more rows than
// this is wholesale rebuilding the ledger and is better served by the
// full-copy fallback than by replaying a journal of comparable length.
const jCap = 8192

// jHost journals a mutation of host row i.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) jHost(i int) {
	if !l.jEnabled {
		return
	}
	l.jAppend(int32(i))
}

// jEdge journals a mutation of edge row e.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) jEdge(e int) {
	if !l.jEnabled {
		return
	}
	l.jAppend(^int32(e))
}

//hmn:locked session
//hmn:noalloc
func (l *Ledger) jAppend(v int32) {
	if len(l.jEntries) >= jCap {
		l.jGen++
		l.jOverflow = true
		l.jEntries = l.jEntries[:0]
	}
	l.jEntries = append(l.jEntries, v) //hmn:allocok capacity is jCap from EnableJournal; the truncation above keeps len under it
}

// EnableJournal turns on write journaling so snapshots of this ledger
// can resynchronise incrementally. Sessions call it once on their live
// ledger; it is idempotent. Ledgers without a journal behave exactly as
// before (snapshots of them always full-copy).
//
//hmn:locked session
func (l *Ledger) EnableJournal() {
	if l.jEnabled {
		return
	}
	l.jEnabled = true
	if cap(l.jEntries) < jCap {
		l.jEntries = make([]int32, 0, jCap)
	}
}

// Snapshot returns an independent journaling copy of the ledger, pinned
// to the source's current journal position so a later SyncFrom against
// the same source copies only the rows that changed. Like Clone, the
// proc hook is not inherited.
//
//hmn:locked session
func (l *Ledger) Snapshot() *Ledger {
	s := l.Clone()
	s.EnableJournal()
	s.syncGen = l.jGen
	s.syncOff = len(l.jEntries)
	return s
}

// SyncFrom makes the snapshot bit-identical to src again, copying only
// the host and edge rows written since the snapshot last matched src —
// the snapshot's own speculative writes plus src's committed ones —
// when both journals are intact, and falling back to a full CopyFrom
// otherwise. Either way it never allocates and re-pins the snapshot at
// src's current journal position. The caller must own both ledgers
// (hold the session lock): the snapshot must not be mid-mapping and src
// must not be mutating concurrently.
//
//hmn:locked session
//hmn:noalloc
func (l *Ledger) SyncFrom(src *Ledger) {
	if l.c != src.c {
		panic("cluster: SyncFrom across clusters")
	}
	if !l.jEnabled || !src.jEnabled || l.jOverflow || l.syncGen != src.jGen {
		l.CopyFrom(src)
		return
	}
	for _, v := range l.jEntries {
		l.copyRow(src, v)
	}
	for _, v := range src.jEntries[l.syncOff:] {
		l.copyRow(src, v)
	}
	l.copyScalars(src)
	l.jEntries = l.jEntries[:0]
	l.syncGen = src.jGen
	l.syncOff = len(src.jEntries)
}

// CopyFrom overwrites every row and scalar of l with src's, reusing l's
// arrays — the allocation-free equivalent of Clone into existing
// storage. The proc hook and journal enablement of l are preserved; the
// snapshot is re-pinned at src's current journal position. It needs no
// journal entries of its own: the overwritten values belonged to a
// stale snapshot nobody reads through, and l's journal is reset to the
// new pin in the same breath.
//
//hmn:locked session
//hmn:journalmutator
//hmn:noalloc
func (l *Ledger) CopyFrom(src *Ledger) {
	if l.c != src.c {
		panic("cluster: CopyFrom across clusters")
	}
	copy(l.proc, src.proc)
	copy(l.mem, src.mem)
	copy(l.stor, src.stor)
	copy(l.bw, src.bw)
	copy(l.quarantined, src.quarantined)
	copy(l.cutEdges, src.cutEdges)
	l.copyScalars(src)
	l.jEntries = l.jEntries[:0]
	l.jOverflow = false
	l.syncGen = src.jGen
	l.syncOff = len(src.jEntries)
}

// copyRow overwrites one journaled row of l (host index for v >= 0,
// edge index for v = ^e) with src's current value. It is the replay
// side of the journal: SyncFrom drives it from src's journal entries,
// so the write is the recorded change, not a new one to record.
//
//hmn:locked session
//hmn:journalmutator
//hmn:noalloc
func (l *Ledger) copyRow(src *Ledger, v int32) {
	if v >= 0 {
		i := int(v)
		l.proc[i] = src.proc[i]
		l.mem[i] = src.mem[i]
		l.stor[i] = src.stor[i]
		l.quarantined[i] = src.quarantined[i]
		return
	}
	e := int(^v)
	l.bw[e] = src.bw[e]
	l.cutEdges[e] = src.cutEdges[e]
}

//hmn:locked session
//hmn:noalloc
func (l *Ledger) copyScalars(src *Ledger) {
	l.topoGen = src.topoGen
	l.cutCount = src.cutCount
	l.genSeq = src.genSeq
	l.sumProc = src.sumProc
	l.sumProcSq = src.sumProcSq
}
