package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func snapshotFixture(t *testing.T) *Cluster {
	t.Helper()
	g := graph.New(5)
	g.AddEdge(0, 1, 1000, 5)
	g.AddEdge(1, 2, 800, 5)
	g.AddEdge(2, 3, 600, 5)
	g.AddEdge(3, 4, 400, 5)
	g.AddEdge(4, 0, 1200, 5)
	c, err := New(g, []Host{
		{Node: 0, Proc: 2000, Mem: 2048, Stor: 2000},
		{Node: 1, Proc: 1500, Mem: 1024, Stor: 1500},
		{Node: 2, Proc: 1000, Mem: 3072, Stor: 1000},
		{Node: 3, Proc: 2500, Mem: 2048, Stor: 2500},
		{Node: 4, Proc: 1800, Mem: 1536, Stor: 1800},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mutateLedger applies one random mutation to led. The operation mix
// covers every journaled row kind: guest reserve/release, path
// reserve/release, quarantine flips and edge cut/restore.
func mutateLedger(rng *rand.Rand, led *Ledger) {
	switch rng.Intn(8) {
	case 0, 1, 2:
		_ = led.ReserveGuest(graph.NodeID(rng.Intn(5)), rng.Float64()*300, int64(rng.Intn(256)), rng.Float64()*200)
	case 3:
		led.ReleaseGuest(graph.NodeID(rng.Intn(5)), rng.Float64()*100, int64(rng.Intn(64)), rng.Float64()*50)
	case 4:
		e := rng.Intn(5)
		p := graph.Path{Nodes: []graph.NodeID{graph.NodeID(e), graph.NodeID((e + 1) % 5)}, Edges: []int{e}}
		if led.ReserveBandwidth(p, rng.Float64()*100) != nil {
			led.ReleaseBandwidth(p, rng.Float64()*50)
		}
	case 5:
		n := graph.NodeID(rng.Intn(5))
		if led.Quarantined(n) {
			led.Unquarantine(n)
		} else {
			led.Quarantine(n)
		}
	case 6:
		led.CutEdge(rng.Intn(5))
	case 7:
		led.RestoreEdge(rng.Intn(5))
	}
}

// ledgersIdentical reports bit-identity of the full mutable state,
// including the running Kahan sums (compensation terms and all).
func ledgersIdentical(a, b *Ledger) bool {
	return reflect.DeepEqual(a.State(), b.State()) &&
		a.sumProc == b.sumProc && a.sumProcSq == b.sumProcSq
}

// Property: after any interleaving of speculative writes on a snapshot
// and committed writes on its source, SyncFrom makes the snapshot
// bit-identical to the source — across repeated reuse cycles, exactly
// what the admission path does with its pooled snapshots.
func TestQuickSnapshotSyncFromMatchesClone(t *testing.T) {
	c := snapshotFixture(t)
	f := func(seed int64, cyclesRaw, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		live, err := NewLedger(c, VMMOverhead{})
		if err != nil {
			return false
		}
		live.EnableJournal()
		snap := live.Snapshot()
		cycles := 1 + int(cyclesRaw)%4
		for cy := 0; cy < cycles; cy++ {
			ops := int(opsRaw) % 32
			for i := 0; i < ops; i++ {
				// Interleave: speculate on the snapshot, commit on the live
				// ledger, in random order.
				if rng.Intn(2) == 0 {
					mutateLedger(rng, snap)
				} else {
					mutateLedger(rng, live)
				}
			}
			snap.SyncFrom(live)
			if !ledgersIdentical(snap, live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A journal overflow on either side must degrade to a correct full
// copy, never to a wrong incremental sync.
func TestSnapshotSyncFromSurvivesJournalOverflow(t *testing.T) {
	c := snapshotFixture(t)
	for _, side := range []string{"live", "snapshot"} {
		live, err := NewLedger(c, VMMOverhead{})
		if err != nil {
			t.Fatal(err)
		}
		live.EnableJournal()
		snap := live.Snapshot()
		rng := rand.New(rand.NewSource(7))
		target := live
		if side == "snapshot" {
			target = snap
		}
		for i := 0; i < jCap+100; i++ { // well past the truncation point
			mutateLedger(rng, target)
		}
		mutateLedger(rng, snap)
		mutateLedger(rng, live)
		snap.SyncFrom(live)
		if !ledgersIdentical(snap, live) {
			t.Fatalf("overflow on %s side: snapshot diverged from source after SyncFrom", side)
		}
		// The fallback must also re-pin correctly: further incremental
		// cycles after the overflow stay exact.
		for i := 0; i < 10; i++ {
			mutateLedger(rng, snap)
			mutateLedger(rng, live)
		}
		snap.SyncFrom(live)
		if !ledgersIdentical(snap, live) {
			t.Fatalf("overflow on %s side: incremental sync after fallback diverged", side)
		}
	}
}

// SyncFrom steady state must not allocate: that is the point of the
// copy-on-write snapshots.
func TestSnapshotSyncFromDoesNotAllocate(t *testing.T) {
	c := snapshotFixture(t)
	live, err := NewLedger(c, VMMOverhead{})
	if err != nil {
		t.Fatal(err)
	}
	live.EnableJournal()
	snap := live.Snapshot()
	rng := rand.New(rand.NewSource(11))
	// Pre-built operands: the measured loop must only exercise ledger
	// mutations that cannot themselves allocate (releases never build
	// error values, and the paths are shared).
	paths := make([]graph.Path, 5)
	for e := 0; e < 5; e++ {
		paths[e] = graph.Path{Nodes: []graph.NodeID{graph.NodeID(e), graph.NodeID((e + 1) % 5)}, Edges: []int{e}}
	}
	allocs := testing.AllocsPerRun(200, func() {
		snap.ReleaseGuest(graph.NodeID(rng.Intn(5)), rng.Float64()*50, int64(rng.Intn(64)), rng.Float64()*40)
		snap.ReleaseBandwidth(paths[rng.Intn(5)], rng.Float64()*20)
		live.ReleaseGuest(graph.NodeID(rng.Intn(5)), rng.Float64()*50, int64(rng.Intn(64)), rng.Float64()*40)
		live.ReleaseBandwidth(paths[rng.Intn(5)], rng.Float64()*20)
		snap.SyncFrom(live)
	})
	if allocs > 0 {
		t.Fatalf("SyncFrom cycle allocates %.1f times per run, want 0", allocs)
	}
}

// A reusable dense transaction must behave exactly like a fresh one:
// same accumulation, same validation outcome, same applied state.
func TestQuickTxnResetReuseMatchesFresh(t *testing.T) {
	c := snapshotFixture(t)
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ledA, err := NewLedger(c, VMMOverhead{})
		if err != nil {
			return false
		}
		ledB := ledA.Clone()
		reused := ledA.NewTxn()
		// Dirty the reusable transaction, then reset it for the real run.
		for i := 0; i < 5; i++ {
			reused.AddGuest(graph.NodeID(rng.Intn(5)), rng.Float64()*100, int64(rng.Intn(128)), rng.Float64()*80)
		}
		reused.Reset()
		fresh := ledB.NewTxn()
		ops := 1 + int(opsRaw)%24
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 {
				n := graph.NodeID(rng.Intn(5))
				proc, mem, stor := rng.Float64()*200, int64(rng.Intn(256)), rng.Float64()*150
				reused.AddGuest(n, proc, mem, stor)
				fresh.AddGuest(n, proc, mem, stor)
			} else {
				e := rng.Intn(5)
				p := graph.Path{Nodes: []graph.NodeID{graph.NodeID(e), graph.NodeID((e + 1) % 5)}, Edges: []int{e}}
				bw := rng.Float64() * 60
				reused.AddPath(p, bw)
				fresh.AddPath(p, bw)
			}
		}
		if reused.Hosts() != fresh.Hosts() || reused.Edges() != fresh.Edges() {
			return false
		}
		errA := ledA.Commit(reused)
		errB := ledB.Commit(fresh)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil && errA.Error() != errB.Error() {
			return false
		}
		return ledgersIdentical(ledA, ledB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
