package cluster

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// twoHostCluster builds hosts on nodes 0 and 2 with a switch on node 1:
// 0 -(100Mbps,5ms)- 1 -(100Mbps,5ms)- 2
func twoHostCluster(t *testing.T) *Cluster {
	t.Helper()
	g := graph.New(3)
	g.AddEdge(0, 1, 100, 5)
	g.AddEdge(1, 2, 100, 5)
	c, err := New(g, []Host{
		{Node: 0, Name: "a", Proc: 2000, Mem: 2048, Stor: 2000},
		{Node: 2, Name: "b", Proc: 1000, Mem: 1024, Stor: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	g := graph.New(2)
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil graph must be rejected")
	}
	if _, err := New(g, []Host{{Node: 5}}); err == nil {
		t.Fatal("out-of-range host node must be rejected")
	}
	if _, err := New(g, []Host{{Node: 0}, {Node: 0}}); err == nil {
		t.Fatal("duplicate host node must be rejected")
	}
	if _, err := New(g, []Host{{Node: 0, Proc: -1}}); err == nil {
		t.Fatal("negative capacity must be rejected")
	}
}

func TestClusterAccessors(t *testing.T) {
	c := twoHostCluster(t)
	if c.NumHosts() != 2 {
		t.Fatalf("NumHosts = %d, want 2", c.NumHosts())
	}
	if !c.IsHost(0) || c.IsHost(1) || !c.IsHost(2) {
		t.Fatal("host/switch classification wrong")
	}
	if c.IsHost(-1) || c.IsHost(99) {
		t.Fatal("out-of-range nodes are not hosts")
	}
	h, ok := c.HostAt(0)
	if !ok || h.Name != "a" || h.Proc != 2000 {
		t.Fatalf("HostAt(0) = %+v, %v", h, ok)
	}
	if _, ok := c.HostAt(1); ok {
		t.Fatal("node 1 is a switch")
	}
	nodes := c.HostNodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 2 {
		t.Fatalf("HostNodes = %v", nodes)
	}
	if c.HostByIndex(1).Name != "b" {
		t.Fatal("HostByIndex wrong")
	}
	if c.TotalProc() != 3000 || c.TotalMem() != 3072 || c.TotalStor() != 3000 {
		t.Fatal("totals wrong")
	}
	if c.Net().NumEdges() != 2 {
		t.Fatal("Net not wired")
	}
}

func TestNewLedgerAppliesOverhead(t *testing.T) {
	c := twoHostCluster(t)
	l, err := NewLedger(c, VMMOverhead{Proc: 100, Mem: 256, Stor: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ResidualProc(0); got != 1900 {
		t.Fatalf("ResidualProc(0) = %v, want 1900", got)
	}
	if got := l.ResidualMem(2); got != 768 {
		t.Fatalf("ResidualMem(2) = %v, want 768", got)
	}
	if got := l.ResidualStor(0); got != 1950 {
		t.Fatalf("ResidualStor(0) = %v, want 1950", got)
	}
}

func TestNewLedgerOverheadTooLarge(t *testing.T) {
	c := twoHostCluster(t)
	_, err := NewLedger(c, VMMOverhead{Mem: 2048})
	if !errors.Is(err, ErrOverheadExceedsCapacity) {
		t.Fatalf("want ErrOverheadExceedsCapacity, got %v", err)
	}
}

func TestLedgerReserveReleaseGuest(t *testing.T) {
	c := twoHostCluster(t)
	l, err := NewLedger(c, VMMOverhead{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Fits(0, 1024, 500) {
		t.Fatal("guest should fit")
	}
	if err := l.ReserveGuest(0, 500, 1024, 500); err != nil {
		t.Fatal(err)
	}
	if l.ResidualProc(0) != 1500 || l.ResidualMem(0) != 1024 || l.ResidualStor(0) != 1500 {
		t.Fatal("residuals not updated")
	}
	// Memory exhausted now for a 2GB guest.
	if l.Fits(0, 2048, 1) {
		t.Fatal("2048MB no longer fits")
	}
	if err := l.ReserveGuest(0, 0, 2048, 0); err == nil {
		t.Fatal("over-reservation must fail")
	}
	// Failure leaves state untouched.
	if l.ResidualMem(0) != 1024 {
		t.Fatal("failed reservation modified the ledger")
	}
	l.ReleaseGuest(0, 500, 1024, 500)
	if l.ResidualProc(0) != 2000 || l.ResidualMem(0) != 2048 || l.ResidualStor(0) != 2000 {
		t.Fatal("release did not restore residuals")
	}
}

func TestLedgerStorageConstraint(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	if err := l.ReserveGuest(2, 0, 0, 5000); err == nil {
		t.Fatal("storage over-reservation must fail")
	}
}

func TestLedgerCPUNotAConstraint(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	// CPU may go negative (Eq. 10 optimises it; Eq. 2-3 do not bound it).
	if err := l.ReserveGuest(0, 5000, 0, 0); err != nil {
		t.Fatalf("CPU oversubscription must be allowed: %v", err)
	}
	if got := l.ResidualProc(0); got != -3000 {
		t.Fatalf("ResidualProc = %v, want -3000", got)
	}
}

func TestLedgerBandwidth(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	p := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []int{0, 1}}
	if err := l.ReserveBandwidth(p, 60); err != nil {
		t.Fatal(err)
	}
	if l.ResidualBandwidth(0) != 40 || l.ResidualBandwidth(1) != 40 {
		t.Fatal("bandwidth not deducted on both edges")
	}
	// Second reservation exceeds edge capacity; ledger must be untouched.
	if err := l.ReserveBandwidth(p, 60); err == nil {
		t.Fatal("over-reservation must fail")
	}
	if l.ResidualBandwidth(0) != 40 || l.ResidualBandwidth(1) != 40 {
		t.Fatal("failed reservation modified the ledger")
	}
	l.ReleaseBandwidth(p, 60)
	if l.ResidualBandwidth(0) != 100 || l.ResidualBandwidth(1) != 100 {
		t.Fatal("release did not restore bandwidth")
	}
}

func TestLedgerTrivialPathReservesNothing(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	if err := l.ReserveBandwidth(graph.TrivialPath(0), 1e9); err != nil {
		t.Fatalf("trivial path must always succeed: %v", err)
	}
	if l.ResidualBandwidth(0) != 100 {
		t.Fatal("trivial path consumed bandwidth")
	}
}

func TestLedgerBandwidthFuncIsLive(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	bw := l.BandwidthFunc()
	if bw(0) != 100 {
		t.Fatal("initial view wrong")
	}
	p := graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []int{0}}
	if err := l.ReserveBandwidth(p, 30); err != nil {
		t.Fatal(err)
	}
	if bw(0) != 70 {
		t.Fatal("BandwidthFunc must reflect later reservations")
	}
}

func TestLedgerClone(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	cp := l.Clone()
	if err := cp.ReserveGuest(0, 100, 100, 100); err != nil {
		t.Fatal(err)
	}
	if err := cp.ReserveBandwidth(graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []int{0}}, 10); err != nil {
		t.Fatal(err)
	}
	if l.ResidualProc(0) != 2000 || l.ResidualMem(0) != 2048 || l.ResidualBandwidth(0) != 100 {
		t.Fatal("mutating the clone changed the original")
	}
	if cp.Cluster() != c {
		t.Fatal("clone must reference the same cluster")
	}
}

func TestResidualProcAllIsCopy(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	r := l.ResidualProcAll()
	if len(r) != 2 || r[0] != 2000 || r[1] != 1000 {
		t.Fatalf("ResidualProcAll = %v", r)
	}
	r[0] = -1
	if l.ResidualProc(0) != 2000 {
		t.Fatal("ResidualProcAll leaked internal state")
	}
}

func TestLedgerPanicsOnSwitch(t *testing.T) {
	c := twoHostCluster(t)
	l, _ := NewLedger(c, VMMOverhead{})
	defer func() {
		if recover() == nil {
			t.Fatal("reserving on a switch node must panic")
		}
	}()
	_ = l.ReserveGuest(1, 1, 1, 1)
}
