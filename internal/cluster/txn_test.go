package cluster

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
)

// txnFixture builds a tiny two-host cluster joined by a single link:
// node 0 (hostA) -- edge 0 -- node 1 (hostB).
func txnFixture(t *testing.T) (*Cluster, *Ledger) {
	t.Helper()
	g := graph.New(2)
	g.AddEdge(0, 1, 1000, 1.0)
	c, err := New(g, []Host{
		{Name: "hostA", Node: 0, Proc: 1000, Mem: 4096, Stor: 100},
		{Name: "hostB", Node: 1, Proc: 1000, Mem: 4096, Stor: 100},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	l, err := NewLedger(c, VMMOverhead{})
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return c, l
}

func pathOn(nodes []graph.NodeID, edges []int) graph.Path {
	return graph.Path{Nodes: nodes, Edges: edges}
}

func TestTxnCommitApplies(t *testing.T) {
	_, l := txnFixture(t)
	txn := l.NewTxn()
	txn.AddGuest(0, 100, 1024, 10)
	txn.AddGuest(0, 50, 512, 5) // same host: demands aggregate
	txn.AddGuest(1, 200, 2048, 20)
	txn.AddPath(pathOn([]graph.NodeID{0, 1}, []int{0}), 300)
	txn.AddPath(pathOn([]graph.NodeID{0, 1}, []int{0}), 200)

	if err := l.Commit(txn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := l.ResidualProc(0); got != 850 {
		t.Errorf("host 0 proc = %v, want 850", got)
	}
	if got := l.ResidualMem(0); got != 4096-1536 {
		t.Errorf("host 0 mem = %v, want %v", got, 4096-1536)
	}
	if got := l.ResidualStor(1); got != 80 {
		t.Errorf("host 1 stor = %v, want 80", got)
	}
	if got := l.ResidualBandwidth(0); got != 500 {
		t.Errorf("edge 0 bw = %v, want 500", got)
	}
}

func TestTxnCommitRejectsAndLeavesLedgerUntouched(t *testing.T) {
	cases := []struct {
		name    string
		prepare func(l *Ledger)
		build   func(l *Ledger) *Txn
		errLike string
	}{
		{
			name: "memory conflict",
			build: func(l *Ledger) *Txn {
				txn := l.NewTxn()
				txn.AddGuest(1, 10, 5000, 1)
				return txn
			},
			errLike: "memory",
		},
		{
			name: "storage conflict",
			build: func(l *Ledger) *Txn {
				txn := l.NewTxn()
				txn.AddGuest(0, 10, 128, 500)
				return txn
			},
			errLike: "storage",
		},
		{
			name:    "quarantined host",
			prepare: func(l *Ledger) { l.Quarantine(0) },
			build: func(l *Ledger) *Txn {
				txn := l.NewTxn()
				txn.AddGuest(0, 10, 128, 1)
				return txn
			},
			errLike: "quarantined",
		},
		{
			name:    "cut edge",
			prepare: func(l *Ledger) { l.CutEdge(0) },
			build: func(l *Ledger) *Txn {
				txn := l.NewTxn()
				txn.AddPath(pathOn([]graph.NodeID{0, 1}, []int{0}), 1)
				return txn
			},
			errLike: "cut",
		},
		{
			name: "bandwidth conflict",
			build: func(l *Ledger) *Txn {
				txn := l.NewTxn()
				txn.AddPath(pathOn([]graph.NodeID{0, 1}, []int{0}), 600)
				txn.AddPath(pathOn([]graph.NodeID{0, 1}, []int{0}), 600)
				return txn
			},
			errLike: "residual",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, l := txnFixture(t)
			if tc.prepare != nil {
				tc.prepare(l)
			}
			// Mix in a valid reservation so rejection must roll back nothing.
			txn := tc.build(l)
			txn.AddGuest(1, 5, 64, 1)
			before := l.Clone()
			err := l.Commit(txn)
			if err == nil {
				t.Fatalf("Commit succeeded, want error containing %q", tc.errLike)
			}
			if !strings.Contains(err.Error(), tc.errLike) {
				t.Errorf("Commit error = %q, want substring %q", err, tc.errLike)
			}
			for node := graph.NodeID(0); node < 2; node++ {
				if l.ResidualProc(node) != before.ResidualProc(node) ||
					l.ResidualMem(node) != before.ResidualMem(node) ||
					l.ResidualStor(node) != before.ResidualStor(node) {
					t.Errorf("host %d residuals changed on failed commit", node)
				}
			}
			if l.ResidualBandwidth(0) != before.ResidualBandwidth(0) {
				t.Errorf("edge 0 residual changed on failed commit")
			}
		})
	}
}

func TestTxnCommitWrongCluster(t *testing.T) {
	_, l1 := txnFixture(t)
	_, l2 := txnFixture(t)
	txn := l1.NewTxn()
	txn.AddGuest(0, 1, 1, 1)
	if err := l2.Commit(txn); err == nil {
		t.Fatal("Commit accepted a transaction from a different cluster")
	}
}

// TestTxnMatchesSerializedReservations checks that committing a batch of
// reservations through a Txn leaves the ledger in exactly the state the
// equivalent sequence of ReserveGuest/ReserveBandwidth calls would.
func TestTxnMatchesSerializedReservations(t *testing.T) {
	_, serial := txnFixture(t)
	_, batch := txnFixture(t)
	rng := rand.New(rand.NewSource(7))
	txn := batch.NewTxn()
	p := pathOn([]graph.NodeID{0, 1}, []int{0})
	for i := 0; i < 20; i++ {
		node := graph.NodeID(rng.Intn(2))
		proc := float64(rng.Intn(20))
		mem := int64(rng.Intn(64))
		stor := float64(rng.Intn(3))
		bw := float64(rng.Intn(10))
		if err := serial.ReserveGuest(node, proc, mem, stor); err != nil {
			t.Fatalf("ReserveGuest: %v", err)
		}
		if err := serial.ReserveBandwidth(p, bw); err != nil {
			t.Fatalf("ReserveBandwidth: %v", err)
		}
		txn.AddGuest(node, proc, mem, stor)
		txn.AddPath(p, bw)
	}
	if err := batch.Commit(txn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	for node := graph.NodeID(0); node < 2; node++ {
		if serial.ResidualProc(node) != batch.ResidualProc(node) ||
			serial.ResidualMem(node) != batch.ResidualMem(node) ||
			serial.ResidualStor(node) != batch.ResidualStor(node) {
			t.Errorf("host %d: txn state diverges from serialized state", node)
		}
	}
	if serial.ResidualBandwidth(0) != batch.ResidualBandwidth(0) {
		t.Errorf("edge 0: txn state diverges from serialized state")
	}
}

func TestTopoGen(t *testing.T) {
	_, l := txnFixture(t)
	g0 := l.TopoGen()
	l.CutEdge(0)
	if l.TopoGen() == g0 {
		t.Error("CutEdge did not bump TopoGen")
	}
	cl := l.Clone()
	if cl.TopoGen() != l.TopoGen() {
		t.Error("Clone did not inherit TopoGen")
	}
	g1 := l.TopoGen()
	l.RestoreEdge(0)
	if l.TopoGen() == g1 {
		t.Error("RestoreEdge did not bump TopoGen")
	}
}
