// Package cluster models the physical environment of the paper (§3.1): a
// cluster of workstations, each running a virtual machine monitor, joined
// by an arbitrary network topology. Nodes of the underlying graph are
// either hosts — with CPU (MIPS), memory (MB) and storage (GB) capacities
// given by the proc/mem/stor functions of §3.2 — or switches, which relay
// traffic but cannot run guests.
//
// The package also provides the Ledger, the residual-resource bookkeeping
// used by every mapping heuristic: it deducts the VMM's own consumption up
// front (§3.1), tracks per-host memory/storage/CPU and per-link bandwidth
// as guests and paths are placed, and exposes the residual bandwidth view
// that the routing searches in internal/graph consult.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Host is one workstation of the cluster. Node is its vertex in the
// cluster graph; Proc, Mem and Stor are the proc/mem/stor capacity
// functions of §3.2 (MIPS, MB, GB).
type Host struct {
	Node graph.NodeID
	Name string
	Proc float64
	Mem  int64
	Stor float64
}

// VMMOverhead is the share of each host's resources consumed by the
// virtual machine monitor itself. Per §3.1 it is deducted from every
// host's availability before any mapping takes place.
type VMMOverhead struct {
	Proc float64
	Mem  int64
	Stor float64
}

// Cluster binds a physical network graph to the subset of its nodes that
// are hosts. Remaining nodes are switches: they participate in routing but
// hold no guests and no capacities. A Cluster is immutable after New and
// safe for concurrent use.
type Cluster struct {
	net       *graph.Graph
	hosts     []Host
	hostIndex []int // node -> index into hosts, or -1 for switches
}

// New validates and assembles a cluster. Every host node must exist in
// net, appear at most once, and have non-negative capacities.
func New(net *graph.Graph, hosts []Host) (*Cluster, error) {
	if net == nil {
		return nil, errors.New("cluster: nil network graph")
	}
	idx := make([]int, net.NumNodes())
	for i := range idx {
		idx[i] = -1
	}
	for i, h := range hosts {
		if h.Node < 0 || int(h.Node) >= net.NumNodes() {
			return nil, fmt.Errorf("cluster: host %d node %d outside graph with %d nodes", i, h.Node, net.NumNodes())
		}
		if idx[h.Node] != -1 {
			return nil, fmt.Errorf("cluster: node %d claimed by two hosts", h.Node)
		}
		if h.Proc < 0 || h.Mem < 0 || h.Stor < 0 {
			return nil, fmt.Errorf("cluster: host %d (node %d) has negative capacity", i, h.Node)
		}
		idx[h.Node] = i
	}
	return &Cluster{net: net, hosts: append([]Host(nil), hosts...), hostIndex: idx}, nil
}

// Net returns the physical network graph.
func (c *Cluster) Net() *graph.Graph { return c.net }

// NumHosts returns the number of host nodes.
func (c *Cluster) NumHosts() int { return len(c.hosts) }

// Hosts returns the hosts in declaration order. The slice is owned by the
// cluster and must not be modified.
func (c *Cluster) Hosts() []Host { return c.hosts }

// HostByIndex returns the i-th host (declaration order).
func (c *Cluster) HostByIndex(i int) Host { return c.hosts[i] }

// IsHost reports whether node is a host (as opposed to a switch).
func (c *Cluster) IsHost(node graph.NodeID) bool {
	if node < 0 || int(node) >= len(c.hostIndex) {
		return false
	}
	return c.hostIndex[node] != -1
}

// HostAt returns the host occupying node, or false if node is a switch or
// out of range.
func (c *Cluster) HostAt(node graph.NodeID) (Host, bool) {
	if !c.IsHost(node) {
		return Host{}, false
	}
	return c.hosts[c.hostIndex[node]], true
}

// hostIdx returns the dense host index of node, panicking on switches —
// internal callers must have checked IsHost already.
func (c *Cluster) hostIdx(node graph.NodeID) int {
	i := -1
	if int(node) < len(c.hostIndex) && node >= 0 {
		i = c.hostIndex[node]
	}
	if i == -1 {
		panic(fmt.Sprintf("cluster: node %d is not a host", node))
	}
	return i
}

// HostIdx returns the dense index of the host at node — its position in
// Hosts() and in every per-host ledger vector — panicking on switches.
// It is the inverse of HostByIndex(i).Node and what SetProcHook consumers
// use to translate hook callbacks into graph nodes.
func (c *Cluster) HostIdx(node graph.NodeID) int { return c.hostIdx(node) }

// HostNodes returns the graph nodes of all hosts, in declaration order.
func (c *Cluster) HostNodes() []graph.NodeID {
	out := make([]graph.NodeID, len(c.hosts))
	for i, h := range c.hosts {
		out[i] = h.Node
	}
	return out
}

// TotalProc returns the summed CPU capacity of all hosts in MIPS.
func (c *Cluster) TotalProc() float64 {
	total := 0.0
	for _, h := range c.hosts {
		total += h.Proc
	}
	return total
}

// TotalMem returns the summed memory capacity of all hosts in MB.
func (c *Cluster) TotalMem() int64 {
	var total int64
	for _, h := range c.hosts {
		total += h.Mem
	}
	return total
}

// TotalStor returns the summed storage capacity of all hosts in GB.
func (c *Cluster) TotalStor() float64 {
	total := 0.0
	for _, h := range c.hosts {
		total += h.Stor
	}
	return total
}
