// Package shard is the federation layer: N fully independent shards —
// each its own core.Session, ledger, WAL directory and rebalance
// scheduler — behind a front-end router that places every incoming
// environment on a shard. Unrelated environments therefore never
// contend on a lock, a snapshot or an fsync: each shard serializes its
// own operations on one worker goroutine, and the only shared state is
// the router's reservation ledger (a handful of floats under one
// mutex) and the inter-shard gateway budget.
//
// Placement is consistent hashing on the tenant session ID for the
// fast path, best-fit on the router's reservation-exact headroom view
// when the hashed shard lacks room, and a split admission — the
// environment cut at its lowest-bandwidth virtual links into per-shard
// fragments, the cut bandwidth charged against the gateway budget —
// when no single shard fits. Fragments commit all-or-nothing: any
// fragment failure releases the committed siblings and refunds every
// reservation.
//
// The router's decisions are a pure function of the order in which
// environments are submitted: reservations and refunds are applied on
// the submitting goroutine, and each shard's single worker executes
// its operations in submission order, so a fixed submission sequence
// yields byte-identical placements and per-shard ledgers on every run.
// The epoch-versioned per-shard residual summaries (core.ResidualSummary)
// refreshed after each commit are advisory — they feed metrics and the
// introspection endpoints, never a routing decision — which is exactly
// what keeps routing deterministic while commits complete in the
// background.
package shard

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rebalance"
	"repro/internal/spec"
	"repro/internal/wal"
)

// Sentinel errors of the federation layer. Errors from the underlying
// sessions (core.ErrNoHostFits, core.ErrNoPath, ...) pass through
// wrapped, so errors.Is sees both layers.
var (
	// ErrNoShardFits means no single shard has the headroom for the
	// environment and splitting could not produce a feasible
	// fragmentation either.
	ErrNoShardFits = errors.New("shard: no shard fits the environment, split included")
	// ErrGatewayExhausted means a split admission's cut bandwidth does
	// not fit the remaining inter-shard gateway budget.
	ErrGatewayExhausted = errors.New("shard: inter-shard gateway bandwidth exhausted")
	// ErrUnknownTenant names a tenant session that was never opened or
	// is already closed.
	ErrUnknownTenant = errors.New("shard: unknown tenant session")
	// ErrUnknownEnv names an environment that is not deployed.
	ErrUnknownEnv = errors.New("shard: unknown environment")
	// ErrClosed reports an operation against a closed federation.
	ErrClosed = errors.New("shard: federation closed")
	// ErrBadShard names a shard index outside [0, Shards).
	ErrBadShard = errors.New("shard: no such shard")
)

// Config parameterizes a federation.
type Config struct {
	// Mapper is the session mapper wire name ("", "HMN" or "HMN-C"),
	// applied to every shard.
	Mapper string
	// Overhead is the per-host VMM overhead, applied to every shard.
	Overhead cluster.VMMOverhead
	// RouteWorkers is the parallel Networking stage's worker count per
	// shard session (see core.Session.SetRouteWorkers).
	RouteWorkers int
	// GatewayBW is the inter-shard gateway bandwidth budget in Mbps.
	// Zero disables split admissions: an environment that fits no
	// single shard is rejected with ErrNoShardFits.
	GatewayBW float64
	// DataDir enables durability: shard k logs to DataDir/shard-k and
	// the tenant registry persists in DataDir/federation.json. Empty
	// keeps the federation in memory.
	DataDir string
	// SnapshotInterval, when positive and DataDir is set, snapshots
	// every shard on this cadence; a final snapshot is always taken on
	// a clean Close.
	SnapshotInterval time.Duration
	// RebalanceInterval, when positive, runs each shard's background
	// rebalancer on this cadence. RebalanceMaxMoves caps guest moves
	// per round (0 = the scheduler's default).
	RebalanceInterval time.Duration
	RebalanceMaxMoves int
	// VerifyReplay cross-checks every recovered shard before serving.
	VerifyReplay bool
	// QueueDepth bounds each shard's operation queue (default 256).
	QueueDepth int
	// Logf reports housekeeping; nil discards.
	Logf func(format string, args ...interface{})
	// Hooks observe durability events for metrics.
	Hooks Hooks
}

// Hooks observe the federation's durability machinery, mirroring
// wal.Hooks across all shards.
type Hooks struct {
	// OnWALRecord fires per appended record, OnFsync per fsync with its
	// latency in seconds, OnSnapshot per shard snapshot with its
	// latency in seconds, OnReplay per replayed record during Recover.
	OnWALRecord func()
	OnFsync     func(seconds float64)
	OnSnapshot  func(seconds float64)
	OnReplay    func()
}

// withDefaults fills the zero values.
func (cfg Config) withDefaults() Config {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	return cfg
}

// shardSID is the WAL session ID a shard's operations are logged
// under; it never collides with tenant IDs ("s1", "s2", ...).
func shardSID(k int) string { return fmt.Sprintf("shard-%d", k) }

// Shard is one lock domain of the federation: a session on its own
// cluster, its own WAL, its own rebalance scheduler, and one worker
// goroutine that executes the shard's operations in submission order.
type Shard struct {
	// Index is the shard's position in the federation, in [0, Shards).
	Index int

	c           *cluster.Cluster
	clusterSpec spec.ClusterSpec
	sess        *core.Session
	w           *wal.WAL // nil without a data directory
	reb         *rebalance.Scheduler

	ops  chan func()
	done chan struct{}
}

// Session exposes the shard's core session for read-side introspection
// (residuals, summaries). Mutating it directly bypasses the worker's
// FIFO and the router's accounting; use the Federation methods.
func (sh *Shard) Session() *core.Session { return sh.sess }

// Cluster returns the shard's physical cluster.
func (sh *Shard) Cluster() *cluster.Cluster { return sh.c }

// loop is the shard's worker goroutine: operations run one at a time,
// in submission order — the property the router's reservation ledger
// and the bench's determinism guarantee both rest on.
func (sh *Shard) loop() {
	defer close(sh.done)
	for fn := range sh.ops {
		fn()
	}
}

// enqueue submits fn to the worker, blocking while the queue is full.
func (sh *Shard) enqueue(fn func()) {
	sh.ops <- fn
}

// run submits fn and waits for it to finish.
func (sh *Shard) run(fn func()) {
	done := make(chan struct{})
	sh.ops <- func() {
		defer close(done)
		fn()
	}
	<-done
}

// barrier makes the shard's appended records durable; free without a
// data directory.
func (sh *Shard) barrier() error {
	if sh.w == nil {
		return nil
	}
	return sh.w.Barrier()
}

// stop drains and stops the worker and the rebalancer. Safe once.
func (sh *Shard) stop() {
	if sh.reb != nil {
		sh.reb.Stop()
	}
	close(sh.ops)
	<-sh.done
}
