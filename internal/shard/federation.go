package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/rebalance"
	"repro/internal/spec"
	"repro/internal/virtual"
	"repro/internal/wal"
)

// Federation owns the shards, the router, the gateway and the tenant
// registry. Tenant sessions ("s1", "s2", ...) are lightweight entries:
// their environments live on whichever shards the router placed them,
// addressed by tags of the form "sid/eid" (whole environments) or
// "sid/eid#iofN@cutBW" (split fragments), which is also how recovery
// rebuilds the registry from the per-shard WALs.
type Federation struct {
	cfg    Config
	shards []*Shard
	router *Router
	gw     *Gateway

	mu      sync.Mutex
	tenants map[string]*tenant //hmn:guardedby mu
	nextSID int                //hmn:guardedby mu
	nextEnv int                //hmn:guardedby mu
	closed  bool               //hmn:guardedby mu

	snapStop chan struct{}
	snapDone chan struct{}
}

// tenant is one tenant session. closing blocks new admissions while
// CloseTenant releases the existing ones.
type tenant struct {
	id      string
	closing bool               //hmn:guardedby mu
	envs    map[string]*envRec //hmn:guardedby mu
}

// envRec locates one deployed environment: its fragments (one for a
// whole admission) and the gateway bandwidth it charged.
type envRec struct {
	frags []*frag
	cutBW float64
	split bool
}

// frag is one fragment on one shard. m is kept current across
// migrations (the rebalance hook) and repairs; tag is the durable
// identity and the fallback lookup key when m went stale anyway.
type frag struct {
	shard int
	m     *mapping.Mapping //hmn:guardedby mu
	tag   string
	proc  float64
}

// Fragment is the public view of one committed fragment.
type Fragment struct {
	// Shard is the shard index the fragment landed on.
	Shard int
	// Guests are the original environment's guest IDs carried by this
	// fragment, ascending; nil when the whole environment was admitted
	// unsplit.
	Guests []virtual.GuestID
	// Env is the admitted (sub-)environment and M its mapping.
	Env *virtual.Env
	M   *mapping.Mapping
	// Tag is the fragment's WAL identity.
	Tag string
}

// Placement is a committed admission.
type Placement struct {
	Fragments []Fragment
	// CutBW is the gateway bandwidth the admission charged (0 unsplit).
	CutBW float64
	// Fallback reports the router bypassed the hashed fast path; Split
	// reports a cross-shard admission.
	Fallback bool
	Split    bool
}

// AdmitResult is an asynchronous admission's outcome.
type AdmitResult struct {
	EnvID     string
	Placement Placement
	Err       error
}

// fragOutcome is one fragment admission's outcome on its shard worker.
type fragOutcome struct {
	i   int
	m   *mapping.Mapping
	err error
}

// New builds a fresh federation of len(clusters) shards. The clusters
// may share a *cluster.Cluster (sessions own their ledgers) or be
// disjoint partitions of one fabric. With cfg.DataDir set, every shard
// gets its own WAL directory and the tenant registry its meta file; a
// directory that already holds state is refused — use Recover.
func New(clusters []*cluster.Cluster, cfg Config) (*Federation, error) {
	cfg = cfg.withDefaults()
	if len(clusters) == 0 {
		return nil, errors.New("shard: federation needs at least one cluster")
	}
	f := &Federation{cfg: cfg, tenants: make(map[string]*tenant)}
	if cfg.GatewayBW > 0 {
		f.gw = NewGateway(cfg.GatewayBW)
	}
	sums := make([]core.ResidualSummary, len(clusters))
	for k, c := range clusters {
		sh, err := f.buildShard(k, c)
		if err != nil {
			f.abortBuild()
			return nil, err
		}
		f.shards = append(f.shards, sh)
		if cfg.DataDir != "" {
			if err := f.freshWAL(sh); err != nil {
				f.abortBuild()
				return nil, err
			}
		}
		sums[k] = sh.sess.ResidualSummary()
	}
	f.router = newRouter(sums, f.gw)
	if cfg.DataDir != "" {
		f.mu.Lock()
		err := f.writeMetaLocked()
		f.mu.Unlock()
		if err != nil {
			f.abortBuild()
			return nil, err
		}
	}
	f.start()
	return f, nil
}

// buildShard assembles one shard's session, scheduler and worker
// plumbing (the worker goroutine starts in start()).
func (f *Federation) buildShard(k int, c *cluster.Cluster) (*Shard, error) {
	mapper, err := core.MapperByName(f.cfg.Mapper, f.cfg.Overhead)
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(c, f.cfg.Overhead, mapper)
	if err != nil {
		return nil, err
	}
	sess.SetRouteWorkers(f.cfg.RouteWorkers)
	sh := &Shard{
		Index:       k,
		c:           c,
		clusterSpec: spec.FromCluster(c),
		sess:        sess,
		ops:         make(chan func(), f.cfg.QueueDepth),
		done:        make(chan struct{}),
	}
	f.attachRebalance(sh)
	return sh, nil
}

// attachRebalance gives the shard its scheduler (stopped; start()
// launches it only when a cadence is configured).
func (f *Federation) attachRebalance(sh *Shard) {
	interval := f.cfg.RebalanceInterval
	if interval <= 0 {
		interval = time.Hour // never started; New insists on a positive period
	}
	k := sh.Index
	sh.reb = rebalance.New(sh.sess, interval, f.cfg.RebalanceMaxMoves, rebalance.Hooks{
		OnCommit: func(_ rebalance.Unit, res *core.MigrateResult, err error) {
			if err != nil || res == nil {
				return
			}
			f.noteMigrate(k, res)
		},
		AfterRound: sh.barrier,
		Logf:       f.cfg.Logf,
	})
}

// freshWAL opens shard sh's empty WAL directory and logs its open
// record. Pre-existing state means the caller wanted Recover.
func (f *Federation) freshWAL(sh *Shard) error {
	w, recovered, err := wal.Open(filepath.Join(f.cfg.DataDir, shardSID(sh.Index)), f.walHooks())
	if err != nil {
		return err
	}
	if recovered.Snapshot != nil || len(recovered.Records) > 0 {
		w.Close()
		return fmt.Errorf("shard: data dir already holds shard %d state; recover instead of creating", sh.Index)
	}
	sh.w = w
	rec := &wal.Record{Kind: wal.KindOpen, SID: shardSID(sh.Index), Open: &wal.OpenRec{
		Cluster: sh.clusterSpec,
		Mapper:  f.cfg.Mapper,
		Proc:    f.cfg.Overhead.Proc,
		Mem:     f.cfg.Overhead.Mem,
		Stor:    f.cfg.Overhead.Stor,
	}}
	if err := w.Append(rec); err != nil {
		return err
	}
	if err := w.Barrier(); err != nil {
		return err
	}
	f.attachWAL(sh)
	return nil
}

// attachWAL installs the shard session's commit hook; it runs under
// the session lock and buffers one record per committed operation.
func (f *Federation) attachWAL(sh *Shard) {
	sid, overhead, w := shardSID(sh.Index), f.cfg.Overhead, sh.w
	sh.sess.SetCommitHook(func(ev core.Event) {
		if err := w.Append(wal.RecordFromEvent(sid, overhead, ev)); err != nil {
			// Already committed in memory; the fault is sticky, so the
			// ack-path barrier fails too and no client is ever told the
			// lost operation is durable.
			f.logf("shard %d: wal append: %v", sh.Index, err)
		}
	})
}

// walHooks adapts the federation hooks for wal.Open.
func (f *Federation) walHooks() wal.Hooks {
	return wal.Hooks{
		OnAppend:   f.cfg.Hooks.OnWALRecord,
		OnFsync:    f.cfg.Hooks.OnFsync,
		OnSnapshot: f.cfg.Hooks.OnSnapshot,
		Logf:       f.cfg.Logf,
	}
}

// start launches the workers, the configured rebalancers and the
// snapshot loop. Called once by New/Recover.
func (f *Federation) start() {
	for _, sh := range f.shards {
		go sh.loop()
		if f.cfg.RebalanceInterval > 0 {
			sh.reb.Start()
		}
	}
	if f.cfg.DataDir != "" && f.cfg.SnapshotInterval > 0 {
		f.snapStop = make(chan struct{})
		f.snapDone = make(chan struct{})
		go f.snapshotLoop()
	}
}

// abortBuild tears down a partially built federation.
func (f *Federation) abortBuild() {
	for _, sh := range f.shards {
		if sh.w != nil {
			sh.w.Close()
		}
	}
}

// logf reports through the configured logger.
func (f *Federation) logf(format string, args ...interface{}) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Shards returns the shard count.
func (f *Federation) Shards() int { return len(f.shards) }

// Shard returns shard k for read-side introspection.
func (f *Federation) Shard(k int) (*Shard, error) {
	if k < 0 || k >= len(f.shards) {
		return nil, ErrBadShard
	}
	return f.shards[k], nil
}

// Gateway returns the inter-shard gateway (nil when GatewayBW is 0).
func (f *Federation) Gateway() *Gateway { return f.gw }

// envTag and fragTag build the durable environment identities.
func envTag(sid, eid string) string { return sid + "/" + eid }

func fragTag(sid, eid string, i, n int, cut float64) string {
	return fmt.Sprintf("%s/%s#%dof%d@%g", sid, eid, i, n, cut)
}

// parseTag inverts envTag/fragTag. Whole environments report frag 1 of
// 1 with zero cut.
func parseTag(tag string) (sid, eid string, fragI, fragN int, cut float64, ok bool) {
	sid, rest, found := strings.Cut(tag, "/")
	if !found || sid == "" {
		return "", "", 0, 0, 0, false
	}
	eid, fragPart, split := strings.Cut(rest, "#")
	if eid == "" {
		return "", "", 0, 0, 0, false
	}
	if !split {
		return sid, eid, 1, 1, 0, true
	}
	counts, cutStr, found := strings.Cut(fragPart, "@")
	if !found {
		return "", "", 0, 0, 0, false
	}
	iStr, nStr, found := strings.Cut(counts, "of")
	if !found {
		return "", "", 0, 0, 0, false
	}
	fragI, err1 := strconv.Atoi(iStr)
	fragN, err2 := strconv.Atoi(nStr)
	cut, err3 := strconv.ParseFloat(cutStr, 64)
	if err1 != nil || err2 != nil || err3 != nil || fragI < 1 || fragN < fragI {
		return "", "", 0, 0, 0, false
	}
	return sid, eid, fragI, fragN, cut, true
}

// OpenTenant opens a tenant session and returns its ID. With a data
// directory the registry is durable before the call returns.
func (f *Federation) OpenTenant() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return "", ErrClosed
	}
	f.nextSID++
	sid := fmt.Sprintf("s%d", f.nextSID)
	f.tenants[sid] = &tenant{id: sid, envs: make(map[string]*envRec)}
	if err := f.writeMetaLocked(); err != nil {
		// The ID stays retired: a reused ID could alias recovered tags.
		delete(f.tenants, sid)
		return "", err
	}
	return sid, nil
}

// Tenants returns the open tenant IDs, sorted.
func (f *Federation) Tenants() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.tenants))
	//hmn:orderinvariant
	for sid, t := range f.tenants {
		if !t.closing {
			out = append(out, sid)
		}
	}
	sort.Strings(out)
	return out
}

// HasTenant reports whether sid is an open tenant session.
func (f *Federation) HasTenant(sid string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tenants[sid]
	return t != nil && !t.closing
}

// AdmitAsync routes v for tenant sid and submits the admission to its
// shard worker(s). The environment ID is assigned immediately (and
// never reused, even if the admission fails); the result arrives on
// the returned channel once every fragment committed — or the plan was
// rolled back. Routing runs on the calling goroutine: callers that
// need deterministic placement submit from one goroutine.
func (f *Federation) AdmitAsync(sid string, v *virtual.Env) (string, <-chan AdmitResult) {
	ch := make(chan AdmitResult, 1)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		ch <- AdmitResult{Err: ErrClosed}
		return "", ch
	}
	t := f.tenants[sid]
	if t == nil || t.closing {
		f.mu.Unlock()
		ch <- AdmitResult{Err: fmt.Errorf("%w: %s", ErrUnknownTenant, sid)}
		return "", ch
	}
	f.nextEnv++
	eid := fmt.Sprintf("e%d", f.nextEnv)
	f.mu.Unlock()

	pl, err := f.router.route(sid, v)
	if err != nil {
		ch <- AdmitResult{EnvID: eid, Err: err}
		return eid, ch
	}
	n := len(pl.groups)
	tags := make([]string, n)
	results := make(chan fragOutcome, n)
	for i := range pl.groups {
		g := pl.groups[i]
		if pl.split {
			tags[i] = fragTag(sid, eid, i+1, n, pl.cutBW)
		} else {
			tags[i] = envTag(sid, eid)
		}
		idx, tag, sh := i, tags[i], f.shards[g.shard]
		proc := g.proc
		sh.enqueue(func() {
			m, _, err := sh.sess.MapTagged(g.env, tag)
			if err == nil {
				if berr := sh.barrier(); berr != nil {
					// Committed but not durable: undo, never acknowledge.
					_ = sh.sess.Release(m)
					m, err = nil, fmt.Errorf("shard %d durability barrier: %w", sh.Index, berr)
				}
			}
			f.router.commit(sh.Index, err == nil, proc, sh.sess.ResidualSummary())
			results <- fragOutcome{i: idx, m: m, err: err}
		})
	}
	go f.gather(sid, eid, pl, tags, results, ch)
	return eid, ch
}

// Admit is the blocking form of AdmitAsync.
func (f *Federation) Admit(sid string, v *virtual.Env) (string, Placement, error) {
	_, ch := f.AdmitAsync(sid, v)
	res := <-ch
	return res.EnvID, res.Placement, res.Err
}

// gather collects an admission's fragment outcomes and settles the
// plan all-or-nothing: every fragment committed registers the
// environment; any failure releases the committed siblings and refunds
// the gateway.
func (f *Federation) gather(sid, eid string, pl plan, tags []string, results chan fragOutcome, ch chan AdmitResult) {
	n := len(pl.groups)
	frags := make([]*frag, n)
	var firstErr error
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		g := pl.groups[o.i]
		frags[o.i] = &frag{shard: g.shard, m: o.m, tag: tags[o.i], proc: g.proc}
	}

	if firstErr == nil {
		f.mu.Lock()
		if t := f.tenants[sid]; t != nil && !t.closing {
			rec := &envRec{frags: compactFrags(frags), cutBW: pl.cutBW, split: pl.split}
			t.envs[eid] = rec
			f.mu.Unlock()
			ch <- AdmitResult{EnvID: eid, Placement: f.placementOf(pl, rec)}
			return
		}
		f.mu.Unlock()
		// The tenant closed while the admission was in flight; the
		// commit is rolled back below like any other failure.
		firstErr = fmt.Errorf("%w: %s", ErrUnknownTenant, sid)
	}

	for _, fr := range frags {
		if fr != nil {
			f.submitFragRelease(fr, nil)
		}
	}
	if pl.cutBW > 0 && f.gw != nil {
		f.gw.Release(pl.cutBW)
	}
	ch <- AdmitResult{EnvID: eid, Err: firstErr}
}

// compactFrags drops the nil slots of a partially failed gather (all
// slots are set on the success path, but keep the invariant local).
func compactFrags(frags []*frag) []*frag {
	out := frags[:0]
	for _, fr := range frags {
		if fr != nil {
			out = append(out, fr)
		}
	}
	return out
}

// placementOf renders the public placement. Caller must not hold f.mu.
func (f *Federation) placementOf(pl plan, rec *envRec) Placement {
	p := Placement{CutBW: pl.cutBW, Fallback: pl.fallback, Split: pl.split}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, fr := range rec.frags {
		p.Fragments = append(p.Fragments, Fragment{
			Shard:  fr.shard,
			Guests: pl.groups[i].orig,
			Env:    pl.groups[i].env,
			M:      fr.m,
			Tag:    fr.tag,
		})
	}
	return p
}

// submitFragRelease refunds the fragment's reservation and enqueues
// its teardown on the owning shard. errs, when non-nil, receives the
// release outcome.
func (f *Federation) submitFragRelease(fr *frag, errs chan<- error) {
	f.router.releaseSubmitted(fr.shard, fr.proc)
	sh := f.shards[fr.shard]
	sh.enqueue(func() {
		f.mu.Lock()
		m := f.fragMappingLocked(fr)
		f.mu.Unlock()
		err := releaseByTag(sh.sess, m, fr.tag)
		if err == nil {
			err = sh.barrier()
		}
		f.router.releaseExecuted(fr.shard, fr.proc, sh.sess.ResidualSummary())
		if errs != nil {
			errs <- err
		}
	})
}

// fragMappingLocked reads a fragment's live mapping pointer; the
// federation lock guards it against concurrent migration updates.
//
//hmn:locked mu
func (f *Federation) fragMappingLocked(fr *frag) *mapping.Mapping { return fr.m }

// releaseByTag releases m, re-resolving the mapping by tag when a
// concurrent migration swapped the pointer. A mapping that vanished
// entirely (an unrecoverable repair evicted it) counts as released.
func releaseByTag(sess *core.Session, m *mapping.Mapping, tag string) error {
	for {
		if m == nil {
			return nil
		}
		err := sess.Release(m)
		if err == nil || !errors.Is(err, core.ErrNotActive) {
			return err
		}
		m = findByTag(sess, tag)
	}
}

// findByTag scans the session's active set for the mapping carrying
// tag; nil when none does.
func findByTag(sess *core.Session, tag string) *mapping.Mapping {
	for _, a := range sess.Export().Active {
		if a.Tag == tag {
			return a.M
		}
	}
	return nil
}

// ReleaseAsync tears an environment down: every fragment released on
// its shard, the gateway refunded. The registry entry is removed
// immediately, so a second release reports ErrUnknownEnv.
func (f *Federation) ReleaseAsync(sid, eid string) <-chan error {
	ch := make(chan error, 1)
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		ch <- ErrClosed
		return ch
	}
	t := f.tenants[sid]
	if t == nil {
		f.mu.Unlock()
		ch <- fmt.Errorf("%w: %s", ErrUnknownTenant, sid)
		return ch
	}
	rec := t.envs[eid]
	if rec == nil {
		f.mu.Unlock()
		ch <- fmt.Errorf("%w: %s/%s", ErrUnknownEnv, sid, eid)
		return ch
	}
	delete(t.envs, eid)
	frags := append([]*frag(nil), rec.frags...)
	f.mu.Unlock()

	errs := make(chan error, len(frags))
	for _, fr := range frags {
		f.submitFragRelease(fr, errs)
	}
	go func() {
		var first error
		for range frags {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		if rec.cutBW > 0 && f.gw != nil {
			f.gw.Release(rec.cutBW)
		}
		ch <- first
	}()
	return ch
}

// Release is the blocking form of ReleaseAsync.
func (f *Federation) Release(sid, eid string) error {
	return <-f.ReleaseAsync(sid, eid)
}

// EnvIDs returns a tenant's deployed environment IDs, ordinal-sorted.
func (f *Federation) EnvIDs(sid string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tenants[sid]
	if t == nil || t.closing {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, sid)
	}
	return sortedEnvIDs(t), nil
}

// sortedEnvIDs lists t's environment IDs by ordinal. Caller holds f.mu.
//
//hmn:locked mu
func sortedEnvIDs(t *tenant) []string {
	out := make([]string, 0, len(t.envs))
	//hmn:orderinvariant
	for eid := range t.envs {
		out = append(out, eid)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := envOrdinal(out[i])
		b, _ := envOrdinal(out[j])
		return a < b
	})
	return out
}

// envOrdinal parses environment IDs ("e7" → 7).
func envOrdinal(eid string) (int, bool) {
	if !strings.HasPrefix(eid, "e") {
		return 0, false
	}
	n, err := strconv.Atoi(eid[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// sessionOrdinal parses tenant session IDs ("s3" → 3).
func sessionOrdinal(sid string) (int, bool) {
	if !strings.HasPrefix(sid, "s") {
		return 0, false
	}
	n, err := strconv.Atoi(sid[1:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// CloseTenant releases every environment of sid and retires the ID.
func (f *Federation) CloseTenant(sid string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	t := f.tenants[sid]
	if t == nil || t.closing {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownTenant, sid)
	}
	t.closing = true
	eids := sortedEnvIDs(t)
	f.mu.Unlock()

	var firstErr error
	for _, eid := range eids {
		if err := f.Release(sid, eid); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.mu.Lock()
	delete(f.tenants, sid)
	err := f.writeMetaLocked()
	f.mu.Unlock()
	if firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// noteMigrate keeps the registry's mapping pointers current across a
// shard's rebalance commits (tags are stable; pointers are not).
func (f *Federation) noteMigrate(k int, res *core.MigrateResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, e := range res.Envs {
		sid, eid, _, _, _, ok := parseTag(e.Tag)
		if !ok {
			continue
		}
		t := f.tenants[sid]
		if t == nil {
			continue
		}
		rec := t.envs[eid]
		if rec == nil {
			continue
		}
		for _, fr := range rec.frags {
			if fr.shard == k && fr.tag == e.Tag {
				fr.m = e.New
			}
		}
	}
}

// FailHost fails a host on shard k and repairs the evictions, then
// reconciles the registry: repaired/replaced fragments keep their
// identity under the new mapping; an unrecoverable fragment takes its
// whole environment down (the sibling fragments are released and the
// gateway refunded), preserving the all-or-nothing contract.
func (f *Federation) FailHost(k int, node graph.NodeID) ([]core.RepairResult, error) {
	return f.failTarget(k, func(sh *Shard) ([]core.RepairResult, error) {
		return sh.sess.FailHostAndRepair(node)
	})
}

// FailLink fails a physical link on shard k; see FailHost.
func (f *Federation) FailLink(k, edgeID int) ([]core.RepairResult, error) {
	return f.failTarget(k, func(sh *Shard) ([]core.RepairResult, error) {
		return sh.sess.FailLinkAndRepair(edgeID)
	})
}

// failTarget runs one fail-and-repair on the shard worker, then
// reconciles and re-centers the router.
func (f *Federation) failTarget(k int, op func(*Shard) ([]core.RepairResult, error)) ([]core.RepairResult, error) {
	if k < 0 || k >= len(f.shards) {
		return nil, ErrBadShard
	}
	sh := f.shards[k]
	var (
		results []core.RepairResult
		opErr   error
	)
	sh.run(func() {
		results, opErr = op(sh)
		if opErr == nil {
			opErr = sh.barrier()
		}
	})
	if opErr != nil {
		return nil, opErr
	}
	f.reconcileRepairs(k, results)
	f.router.resync(k, sh.sess.ResidualSummary())
	return results, nil
}

// RestoreHost readmits a failed host on shard k.
func (f *Federation) RestoreHost(k int, node graph.NodeID) error {
	return f.restoreTarget(k, func(sh *Shard) error { return sh.sess.RestoreHost(node) })
}

// RestoreLink readmits a cut link on shard k.
func (f *Federation) RestoreLink(k, edgeID int) error {
	return f.restoreTarget(k, func(sh *Shard) error { return sh.sess.RestoreLink(edgeID) })
}

func (f *Federation) restoreTarget(k int, op func(*Shard) error) error {
	if k < 0 || k >= len(f.shards) {
		return ErrBadShard
	}
	sh := f.shards[k]
	var opErr error
	sh.run(func() {
		opErr = op(sh)
		if opErr == nil {
			opErr = sh.barrier()
		}
	})
	if opErr != nil {
		return opErr
	}
	f.router.resync(k, sh.sess.ResidualSummary())
	return nil
}

// RebalanceOnce runs one planning round on shard k and returns the
// units committed with the objective before/after.
func (f *Federation) RebalanceOnce(k int) (moves int, before, after float64, err error) {
	if k < 0 || k >= len(f.shards) {
		return 0, 0, 0, ErrBadShard
	}
	sh := f.shards[k]
	sh.run(func() {
		before = sh.sess.ObjectiveStdDev()
		moves = sh.reb.RunOnce()
		after = sh.sess.ObjectiveStdDev()
		err = sh.barrier()
	})
	return moves, before, after, err
}

// reconcileRepairs applies one shard's repair outcomes to the registry.
func (f *Federation) reconcileRepairs(k int, results []core.RepairResult) {
	if len(results) == 0 {
		return
	}
	f.mu.Lock()
	// Locate each repaired mapping's fragment by pointer; iteration is
	// over sorted IDs so the (rare) diagnostic order is stable.
	type victim struct {
		sid, eid string
		rec      *envRec
	}
	var dead []victim
	for _, sid := range sortedTenantIDsLocked(f.tenants) {
		t := f.tenants[sid]
		for _, eid := range sortedEnvIDs(t) {
			rec := t.envs[eid]
			for _, fr := range rec.frags {
				if fr.shard != k {
					continue
				}
				for i := range results {
					res := &results[i]
					if res.Old != fr.m && (res.New == nil || res.New != fr.m) {
						continue
					}
					if res.Outcome == core.RepairUnrecoverable {
						dead = append(dead, victim{sid: sid, eid: eid, rec: rec})
					} else if fr.m == res.Old {
						fr.m = res.New
					}
					break
				}
			}
		}
	}
	for _, v := range dead {
		t := f.tenants[v.sid]
		delete(t.envs, v.eid)
	}
	f.mu.Unlock()

	for _, v := range dead {
		lost := 0
		for _, fr := range v.rec.frags {
			if fr.shard == k && fragIsGone(f.shards[k].sess, fr.tag) {
				// The evicted fragment itself: nothing to release; the
				// resync after reconciliation re-centers the headroom.
				lost++
				continue
			}
			f.submitFragRelease(fr, nil)
		}
		f.router.adjustEnvs(k, -lost)
		if v.rec.cutBW > 0 && f.gw != nil {
			f.gw.Release(v.rec.cutBW)
		}
	}
}

// fragIsGone reports that no active mapping carries tag anymore.
func fragIsGone(sess *core.Session, tag string) bool {
	return findByTag(sess, tag) == nil
}

// sortedTenantIDsLocked lists the tenant IDs sorted; caller holds f.mu.
//
//hmn:locked mu
func sortedTenantIDsLocked(tenants map[string]*tenant) []string {
	out := make([]string, 0, len(tenants))
	//hmn:orderinvariant
	for sid := range tenants {
		out = append(out, sid)
	}
	sort.Strings(out)
	return out
}

// Stats is a point-in-time federation census for the metrics layer.
type Stats struct {
	Shards          []ShardStats
	RouterFallbacks uint64
	SplitAdmissions uint64
	GatewayInUse    float64
	GatewayBudget   float64
	Tenants         int
}

// ShardStats is one shard's slice of Stats.
type ShardStats struct {
	// Admissions counts committed fragment admissions; ActiveEnvs is
	// the deployed fragment count (occupancy) and ResidualProc the
	// router's reservation-exact headroom view in MIPS.
	Admissions   uint64
	ActiveEnvs   int
	ResidualProc float64
	// Summary is the last advisory epoch-versioned summary.
	Summary core.ResidualSummary
}

// Stats snapshots the federation counters.
func (f *Federation) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(f.shards))}
	f.router.snapshotStats(&st)
	if f.gw != nil {
		st.GatewayInUse = f.gw.InUse()
		st.GatewayBudget = f.gw.Budget()
	}
	f.mu.Lock()
	st.Tenants = len(f.tenants)
	f.mu.Unlock()
	return st
}

// Close stops the workers (draining their queues), the rebalancers and
// the snapshot loop, takes a final snapshot of every shard, and closes
// the WALs.
func (f *Federation) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	if f.snapStop != nil {
		close(f.snapStop)
		<-f.snapDone
	}
	var firstErr error
	for _, sh := range f.shards {
		sh.stop()
		if sh.w != nil {
			if err := f.snapshotShard(sh); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := sh.w.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
