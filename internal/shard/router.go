package shard

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/virtual"
)

// ringVnodes is the number of virtual points each shard owns on the
// consistent-hash ring. 64 points per shard keeps the assignment share
// within a few percent of uniform while the ring stays small enough to
// search in a handful of cache lines.
const ringVnodes = 64

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is a consistent-hash ring over the federation's shards. It is
// immutable after construction and therefore safe for concurrent use.
// For a fixed shard count the ring — and so every fast-path pick — is
// a pure function of the tenant session ID.
type ring struct {
	points []ringPoint
}

// buildRing places ringVnodes points per shard, ordered by hash with
// the shard index breaking ties so construction is deterministic.
func buildRing(shards int) ring {
	pts := make([]ringPoint, 0, shards*ringVnodes)
	for k := 0; k < shards; k++ {
		for v := 0; v < ringVnodes; v++ {
			pts = append(pts, ringPoint{hash: fnvHash2(shardSID(k), v), shard: k})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	return ring{points: pts}
}

// pick maps a tenant session ID to its fast-path shard: the first ring
// point at or after the ID's hash, wrapping at the top.
func (r ring) pick(sid string) int {
	h := fnvHash(sid)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// fnvHash is FNV-1a over s, finalized with mix64. The finalizer
// matters: FNV-1a folds each byte with one xor-multiply, so two short
// keys differing only in their last byte end up within ~255 primes of
// each other — around 2^48 on a 2^64 ring whose arcs average 2^56 wide.
// Sequential tenant IDs ("s1", "s2", ...) would all land on one arc,
// and the fast path would funnel every tenant to a single shard.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// fnvHash2 is FNV-1a over s plus a vnode discriminator, finalized like
// fnvHash so vnode points spread over the whole ring.
func fnvHash2(s string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	h.Write([]byte{'#', byte(v), byte(v >> 8)})
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective avalanche, so nearby
// inputs scatter across the full 64-bit range.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Router owns shard placement. Its headroom view is reservation-exact:
// every reservation and refund is applied on the submitting goroutine,
// before the operation is enqueued to its shard, so with each shard
// executing in submission order the view always agrees with what the
// shard's ledger will say when the operation runs. Routing decisions
// read nothing else — the epoch-versioned summaries are refreshed by
// the shard workers after commits and feed only metrics and
// introspection, which is what keeps placement deterministic while
// admissions complete in the background.
type Router struct {
	ring ring     // immutable
	gw   *Gateway // shared budget; nil when GatewayBW is 0

	mu sync.Mutex
	// resProc is the effective residual CPU per shard: the last resync
	// base minus every live reservation. envs counts deployed
	// fragments per shard; outstanding tracks reservations whose
	// admission has not committed yet and pendingRel refunds whose
	// release has not executed yet — both only so resync can re-center
	// resProc while operations are in flight.
	resProc     []float64 //hmn:guardedby mu
	outstanding []float64 //hmn:guardedby mu
	pendingRel  []float64 //hmn:guardedby mu
	envs        []int     //hmn:guardedby mu
	// sums is the advisory epoch-versioned summary cache, one entry
	// per shard, refreshed by the shard workers after each commit.
	sums []core.ResidualSummary //hmn:guardedby mu
	// admissions counts committed fragment admissions per shard;
	// fallbacks and splits count routing outcomes.
	admissions []uint64 //hmn:guardedby mu
	fallbacks  uint64   //hmn:guardedby mu
	splits     uint64   //hmn:guardedby mu
}

// newRouter builds the router over the shards' initial summaries.
func newRouter(sums []core.ResidualSummary, gw *Gateway) *Router {
	n := len(sums)
	r := &Router{
		ring:        buildRing(n),
		gw:          gw,
		resProc:     make([]float64, n),
		outstanding: make([]float64, n),
		pendingRel:  make([]float64, n),
		envs:        make([]int, n),
		sums:        append([]core.ResidualSummary(nil), sums...),
		admissions:  make([]uint64, n),
	}
	for k, s := range sums {
		r.resProc[k] = s.TotalProc
		r.envs[k] = s.Envs
	}
	return r
}

// pickLocked is the shard-pick hot path: the hashed fast-path shard
// when it has headroom, otherwise the tightest-fitting shard
// (smallest non-negative leftover, lowest index on ties), or -1 when
// no single shard fits. fallback reports that the hashed pick was
// bypassed.
//
//hmn:locked mu
//hmn:noalloc
func (r *Router) pickLocked(hashed int, need float64) (pick int, fallback bool) {
	if r.resProc[hashed] >= need {
		return hashed, false
	}
	best, bestLeft := -1, 0.0
	for k := 0; k < len(r.resProc); k++ {
		left := r.resProc[k] - need
		if left < 0 {
			continue
		}
		if best < 0 || left < bestLeft {
			best, bestLeft = k, left
		}
	}
	return best, best >= 0
}

// reserveLocked charges a pending admission against a shard.
//
//hmn:locked mu
//hmn:noalloc
func (r *Router) reserveLocked(k int, proc float64) {
	r.resProc[k] -= proc
	r.outstanding[k] += proc
}

// route places env for tenant sid: a single-shard plan on the fast
// path or best fit, a split plan when no single shard fits and the
// gateway has budget. Reservations for every group in the returned
// plan are already charged.
func (r *Router) route(sid string, v *virtual.Env) (plan, error) {
	need := v.TotalProc()
	hashed := r.ring.pick(sid)
	r.mu.Lock()
	defer r.mu.Unlock()
	k, fallback := r.pickLocked(hashed, need)
	if k >= 0 {
		r.reserveLocked(k, need)
		if fallback {
			r.fallbacks++
		}
		return plan{groups: []group{{shard: k, env: v, proc: need}}, fallback: fallback}, nil
	}
	pl, err := r.splitLocked(v)
	if err != nil {
		return plan{}, err
	}
	r.fallbacks++
	r.splits++
	for _, g := range pl.groups {
		r.reserveLocked(g.shard, g.proc)
	}
	return pl, nil
}

// commit settles a fragment admission's outcome on shard k: a success
// keeps the reservation as consumption and refreshes the advisory
// summary; a failure refunds it.
func (r *Router) commit(k int, ok bool, proc float64, sum core.ResidualSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.outstanding[k] -= proc
	if ok {
		r.admissions[k]++
		r.envs[k]++
	} else {
		r.resProc[k] += proc
	}
	r.refreshLocked(k, sum)
}

// releaseSubmitted refunds a fragment's reservation at release-submit
// time: the shard's FIFO guarantees the release executes before any
// admission routed afterwards, so the headroom is spendable now.
func (r *Router) releaseSubmitted(k int, proc float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resProc[k] += proc
	r.pendingRel[k] += proc
	r.envs[k]--
}

// releaseExecuted marks a submitted release as applied on the shard's
// ledger and refreshes the advisory summary.
func (r *Router) releaseExecuted(k int, proc float64, sum core.ResidualSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pendingRel[k] -= proc
	r.refreshLocked(k, sum)
}

// refreshLocked installs a newer advisory summary; stale epochs (a
// slower worker publishing after a faster one) are dropped.
//
//hmn:locked mu
func (r *Router) refreshLocked(k int, sum core.ResidualSummary) {
	if sum.Epoch >= r.sums[k].Epoch {
		r.sums[k] = sum
	}
}

// resync re-centers shard k's headroom from a fresh summary after an
// out-of-band capacity change (a failure, a restore, a repair, a
// rebalance round): base minus reservations still outstanding plus
// refunds not yet applied on the ledger. env counts follow the
// summary. In-flight work makes the result approximate for a moment;
// the shard's own admission checks remain the truth.
func (r *Router) resync(k int, sum core.ResidualSummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resProc[k] = sum.TotalProc - r.outstanding[k] + r.pendingRel[k]
	r.envs[k] = sum.Envs
	r.refreshLocked(k, sum)
}

// adjustEnvs bumps shard k's deployed-fragment count by d without
// touching headroom — repairs change membership but the summary resync
// carries the capacity side.
func (r *Router) adjustEnvs(k, d int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.envs[k] += d
}

// snapshotStats copies the router's counters for Stats.
func (r *Router) snapshotStats(dst *Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dst.RouterFallbacks = r.fallbacks
	dst.SplitAdmissions = r.splits
	for k := range r.resProc {
		dst.Shards[k].Admissions = r.admissions[k]
		dst.Shards[k].ActiveEnvs = r.envs[k]
		dst.Shards[k].ResidualProc = r.resProc[k]
		dst.Shards[k].Summary = r.sums[k]
	}
}
