package shard

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/virtual"
	"repro/internal/workload"
)

// uniformSpecs builds n identical hosts.
func uniformSpecs(n int, proc float64, mem int64, stor float64) []topology.HostSpec {
	out := make([]topology.HostSpec, n)
	for i := range out {
		out[i] = topology.HostSpec{Proc: proc, Mem: mem, Stor: stor}
	}
	return out
}

// testClusters builds shards equal 2x2 torus clusters with generous
// links, memory and storage (each host 2000 MIPS): CPU is the binding
// resource, matching what the router's headroom view tracks.
func testClusters(t *testing.T, shards int) []*cluster.Cluster {
	t.Helper()
	out := make([]*cluster.Cluster, shards)
	for k := range out {
		c, err := topology.Torus2D(uniformSpecs(4, 2000, 65536, 100000), 2, 2, 10000, 1)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = c
	}
	return out
}

func newTestFederation(t *testing.T, shards int, cfg Config) *Federation {
	t.Helper()
	f, err := New(testClusters(t, shards), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// genEnv draws a seeded workload environment.
func genEnv(seed int64, guests int) *virtual.Env {
	rng := rand.New(rand.NewSource(seed))
	return workload.GenerateEnv(workload.HighLevelParams(guests, 0.03), rng)
}

func TestFederationAdmitRelease(t *testing.T) {
	f := newTestFederation(t, 2, Config{})
	sid, err := f.OpenTenant()
	if err != nil {
		t.Fatal(err)
	}
	if sid != "s1" {
		t.Fatalf("tenant ID = %q, want s1", sid)
	}
	v := genEnv(1, 12)
	eid, pl, err := f.Admit(sid, v)
	if err != nil {
		t.Fatal(err)
	}
	if eid != "e1" {
		t.Fatalf("env ID = %q, want e1", eid)
	}
	if len(pl.Fragments) != 1 || pl.Split {
		t.Fatalf("whole-env admission produced %d fragments (split=%v)", len(pl.Fragments), pl.Split)
	}
	k := pl.Fragments[0].Shard
	sh, _ := f.Shard(k)
	if sh.Session().Active() != 1 {
		t.Fatalf("shard %d active = %d, want 1", k, sh.Session().Active())
	}
	st := f.Stats()
	if st.Shards[k].Admissions != 1 || st.Shards[k].ActiveEnvs != 1 {
		t.Fatalf("shard %d stats = %+v", k, st.Shards[k])
	}
	if err := f.Release(sid, eid); err != nil {
		t.Fatal(err)
	}
	if err := f.Release(sid, eid); !errors.Is(err, ErrUnknownEnv) {
		t.Fatalf("double release = %v, want ErrUnknownEnv", err)
	}
	// Drain the shard worker, then check the ledger is fully restored.
	sh.run(func() {})
	if sh.Session().Active() != 0 {
		t.Fatalf("shard %d still has %d active envs after release", k, sh.Session().Active())
	}
}

func TestFederationUnknownTenant(t *testing.T) {
	f := newTestFederation(t, 2, Config{})
	if _, _, err := f.Admit("s99", genEnv(1, 8)); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("admit on unknown tenant = %v", err)
	}
	if err := f.Release("s99", "e1"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("release on unknown tenant = %v", err)
	}
	if err := f.CloseTenant("s99"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("close on unknown tenant = %v", err)
	}
}

// placementSignature digests a submission sequence's outcome: every
// fragment's shard and tag plus each shard's residual CPU vector.
func placementSignature(t *testing.T, f *Federation, placements []Placement) string {
	t.Helper()
	sig := ""
	for _, pl := range placements {
		for _, fr := range pl.Fragments {
			sig += fmt.Sprintf("%s@%d;", fr.Tag, fr.Shard)
		}
	}
	for k := 0; k < f.Shards(); k++ {
		sh, _ := f.Shard(k)
		sh.run(func() {}) // drain
		for _, p := range sh.Session().ResidualProc() {
			sig += fmt.Sprintf("%.9f,", p)
		}
		sig += "|"
	}
	return sig
}

func TestPlacementDeterministic(t *testing.T) {
	run := func() string {
		f := newTestFederation(t, 4, Config{GatewayBW: 1000})
		sid, err := f.OpenTenant()
		if err != nil {
			t.Fatal(err)
		}
		var placements []Placement
		for i := int64(0); i < 24; i++ {
			v := genEnv(100+i, 10)
			_, pl, err := f.Admit(sid, v)
			if err != nil {
				t.Fatalf("admit %d: %v", i, err)
			}
			placements = append(placements, pl)
			if i >= 8 {
				if err := f.Release(sid, fmt.Sprintf("e%d", i-7)); err != nil {
					t.Fatalf("release after %d: %v", i, err)
				}
			}
		}
		return placementSignature(t, f, placements)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("placement differs across identical runs:\n%s\nvs\n%s", a, b)
	}
}

// splitEnv is two CPU-heavy guest communities joined by one thin link:
// neither community alone exceeds a shard, together they do, and the
// thin link is the natural cut.
func splitEnv(commBW float64) *virtual.Env {
	v := virtual.NewEnv()
	for i := 0; i < 6; i++ {
		v.AddGuest(fmt.Sprintf("g%d", i), 1600, 256, 100)
	}
	v.AddLink(0, 1, commBW, 1000)
	v.AddLink(1, 2, commBW, 1000)
	v.AddLink(3, 4, commBW, 1000)
	v.AddLink(4, 5, commBW, 1000)
	v.AddLink(0, 3, 1, 1000) // the cut
	return v
}

func TestSplitAdmission(t *testing.T) {
	f := newTestFederation(t, 2, Config{GatewayBW: 10})
	sid, _ := f.OpenTenant()
	eid, pl, err := f.Admit(sid, splitEnv(50))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Split || len(pl.Fragments) != 2 {
		t.Fatalf("expected a 2-way split, got %+v", pl)
	}
	if pl.CutBW != 1 {
		t.Fatalf("cut = %g Mbps, want 1 (the thin link)", pl.CutBW)
	}
	if f.Gateway().InUse() != 1 {
		t.Fatalf("gateway in use = %g, want 1", f.Gateway().InUse())
	}
	shards := map[int]bool{}
	for _, fr := range pl.Fragments {
		if len(fr.Guests) != 3 {
			t.Fatalf("fragment carries %d guests, want 3", len(fr.Guests))
		}
		shards[fr.Shard] = true
	}
	if len(shards) != 2 {
		t.Fatalf("fragments share a shard: %+v", pl.Fragments)
	}
	if err := f.Release(sid, eid); err != nil {
		t.Fatal(err)
	}
	if got := f.Gateway().InUse(); got != 0 {
		t.Fatalf("gateway in use after release = %g, want 0", got)
	}
}

func TestSplitGatewayExhausted(t *testing.T) {
	f := newTestFederation(t, 2, Config{GatewayBW: 0.5})
	sid, _ := f.OpenTenant()
	if _, _, err := f.Admit(sid, splitEnv(50)); !errors.Is(err, ErrGatewayExhausted) {
		t.Fatalf("admit = %v, want ErrGatewayExhausted", err)
	}
}

func TestSplitDisabledWithoutGateway(t *testing.T) {
	f := newTestFederation(t, 2, Config{})
	sid, _ := f.OpenTenant()
	if _, _, err := f.Admit(sid, splitEnv(50)); !errors.Is(err, ErrNoShardFits) {
		t.Fatalf("admit = %v, want ErrNoShardFits", err)
	}
}

// TestSplitRollback forces one fragment of a split to fail in the
// Networking stage (its community links exceed every physical trunk)
// and checks the all-or-nothing contract: the sibling fragment is
// released, the gateway refunded, nothing stays deployed.
func TestSplitRollback(t *testing.T) {
	f := newTestFederation(t, 2, Config{GatewayBW: 100})
	sid, _ := f.OpenTenant()
	v := virtual.NewEnv()
	for i := 0; i < 6; i++ {
		v.AddGuest(fmt.Sprintf("g%d", i), 1600, 256, 100)
	}
	v.AddLink(0, 1, 50, 1000) // feasible community
	v.AddLink(1, 2, 50, 1000)
	v.AddLink(3, 4, 50000, 1000) // infeasible: exceeds every trunk
	v.AddLink(4, 5, 50000, 1000)
	v.AddLink(0, 3, 1, 1000)
	_, _, err := f.Admit(sid, v)
	if err == nil {
		t.Fatal("admit of an infeasible fragment succeeded")
	}
	for k := 0; k < 2; k++ {
		sh, _ := f.Shard(k)
		sh.run(func() {})
		if sh.Session().Active() != 0 {
			t.Fatalf("shard %d keeps %d fragments after rollback", k, sh.Session().Active())
		}
	}
	if got := f.Gateway().InUse(); got != 0 {
		t.Fatalf("gateway in use after rollback = %g, want 0", got)
	}
	ids, err := f.EnvIDs(sid)
	if err != nil || len(ids) != 0 {
		t.Fatalf("registry after rollback: ids=%v err=%v", ids, err)
	}
}

func TestCloseTenantReleasesEverything(t *testing.T) {
	f := newTestFederation(t, 2, Config{GatewayBW: 10})
	sid, _ := f.OpenTenant()
	for i := int64(0); i < 4; i++ {
		if _, _, err := f.Admit(sid, genEnv(40+i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := f.Admit(sid, splitEnv(50)); err != nil {
		t.Fatal(err)
	}
	if err := f.CloseTenant(sid); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		sh, _ := f.Shard(k)
		sh.run(func() {})
		if sh.Session().Active() != 0 {
			t.Fatalf("shard %d keeps %d envs after tenant close", k, sh.Session().Active())
		}
	}
	if got := f.Gateway().InUse(); got != 0 {
		t.Fatalf("gateway in use after tenant close = %g", got)
	}
	if f.HasTenant(sid) {
		t.Fatal("tenant still open after close")
	}
	// The next tenant gets a fresh ID.
	sid2, _ := f.OpenTenant()
	if sid2 != "s2" {
		t.Fatalf("next tenant = %q, want s2", sid2)
	}
}

func TestFailHostRepairsAndResyncs(t *testing.T) {
	f := newTestFederation(t, 2, Config{})
	sid, _ := f.OpenTenant()
	eid, pl, err := f.Admit(sid, genEnv(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	k := pl.Fragments[0].Shard
	sh, _ := f.Shard(k)
	node := sh.Cluster().HostNodes()[pl.Fragments[0].M.GuestHost[0]]
	results, err := f.FailHost(k, node)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no repair result for a host that carried guests")
	}
	for _, res := range results {
		if res.Outcome == core.RepairUnrecoverable {
			t.Skip("repair unrecoverable on this draw; registry teardown covered elsewhere")
		}
	}
	// The registry must track the repaired mapping: release must work.
	if err := f.Release(sid, eid); err != nil {
		t.Fatalf("release after repair: %v", err)
	}
	if err := f.RestoreHost(k, node); err != nil {
		t.Fatal(err)
	}
	sh.run(func() {})
	if sh.Session().Active() != 0 {
		t.Fatalf("shard %d active = %d after release", k, sh.Session().Active())
	}
}

func TestConcurrentTenants(t *testing.T) {
	f := newTestFederation(t, 4, Config{GatewayBW: 100})
	const tenants = 4
	sids := make([]string, tenants)
	for i := range sids {
		sid, err := f.OpenTenant()
		if err != nil {
			t.Fatal(err)
		}
		sids[i] = sid
	}
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for ti, sid := range sids {
		wg.Add(1)
		go func(ti int, sid string) {
			defer wg.Done()
			var eids []string
			for i := int64(0); i < 6; i++ {
				eid, _, err := f.Admit(sid, genEnv(int64(ti)*100+i, 8))
				if err != nil {
					errs <- fmt.Errorf("tenant %s admit %d: %w", sid, i, err)
					return
				}
				eids = append(eids, eid)
			}
			for _, eid := range eids {
				if err := f.Release(sid, eid); err != nil {
					errs <- fmt.Errorf("tenant %s release %s: %w", sid, eid, err)
					return
				}
			}
			errs <- nil
		}(ti, sid)
	}
	wg.Wait()
	for range sids {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < f.Shards(); k++ {
		sh, _ := f.Shard(k)
		sh.run(func() {})
		if sh.Session().Active() != 0 {
			t.Fatalf("shard %d keeps %d envs", k, sh.Session().Active())
		}
	}
}

func TestRouterBestFitFallback(t *testing.T) {
	sums := []core.ResidualSummary{
		{TotalProc: 100},
		{TotalProc: 50},
		{TotalProc: 80},
	}
	r := newRouter(sums, nil)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, fb := r.pickLocked(0, 90); k != 0 || fb {
		t.Fatalf("fast path: pick=%d fallback=%v", k, fb)
	}
	// Hashed shard 1 lacks room: tightest fit wins (shard 2: 80-60=20
	// beats shard 0: 100-60=40).
	if k, fb := r.pickLocked(1, 60); k != 2 || !fb {
		t.Fatalf("best fit: pick=%d fallback=%v", k, fb)
	}
	if k, _ := r.pickLocked(1, 200); k != -1 {
		t.Fatalf("oversized pick = %d, want -1", k)
	}
}

func TestRingDeterministicAndStable(t *testing.T) {
	a, b := buildRing(8), buildRing(8)
	if len(a.points) != len(b.points) || len(a.points) != 8*ringVnodes {
		t.Fatalf("ring sizes %d/%d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i] != b.points[i] {
			t.Fatal("ring construction is not deterministic")
		}
	}
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		counts[a.pick(fmt.Sprintf("s%d", i))]++
	}
	for k, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no keys", k)
		}
	}
	// Real tenant IDs are small and sequential; without the mix64
	// finalizer they cluster within one ring arc and the fast path
	// funnels every tenant to a single shard. The first handful must
	// already spread: no shard may own more than half of s1..s16.
	early := make([]int, 8)
	for i := 1; i <= 16; i++ {
		early[a.pick(fmt.Sprintf("s%d", i))]++
	}
	for k, n := range early {
		if n > 8 {
			t.Fatalf("shard %d owns %d of the first 16 tenants — sequential IDs cluster on the ring", k, n)
		}
	}
}

func TestGatewayBudget(t *testing.T) {
	g := NewGateway(10)
	if err := g.Reserve(7); err != nil {
		t.Fatal(err)
	}
	if err := g.Reserve(4); !errors.Is(err, ErrGatewayExhausted) {
		t.Fatalf("over-budget reserve = %v", err)
	}
	if err := g.Reserve(3); err != nil {
		t.Fatal(err)
	}
	g.Release(5)
	if got := g.InUse(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("in use = %g, want 5", got)
	}
	g.Release(100)
	if got := g.InUse(); got != 0 {
		t.Fatalf("in use clamps at 0, got %g", got)
	}
}

func TestParseTagRoundTrip(t *testing.T) {
	cases := []struct {
		tag          string
		sid, eid     string
		fragI, fragN int
		cut          float64
		ok           bool
	}{
		{envTag("s1", "e7"), "s1", "e7", 1, 1, 0, true},
		{fragTag("s2", "e12", 2, 3, 4.5), "s2", "e12", 2, 3, 4.5, true},
		{"garbage", "", "", 0, 0, 0, false},
		{"s1/", "", "", 0, 0, 0, false},
		{"s1/e1#2of1@3", "", "", 0, 0, 0, false},
	}
	for _, c := range cases {
		sid, eid, fragI, fragN, cut, ok := parseTag(c.tag)
		if ok != c.ok || sid != c.sid || eid != c.eid || fragI != c.fragI || fragN != c.fragN || cut != c.cut {
			t.Fatalf("parseTag(%q) = %q %q %d %d %g %v", c.tag, sid, eid, fragI, fragN, cut, ok)
		}
	}
}
