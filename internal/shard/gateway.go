package shard

import "sync"

// Gateway is the inter-shard interconnect budget. A split admission's
// cut links — the virtual links whose endpoints land on different
// shards — are not mapped onto any shard's physical fabric; they are
// carried by the gateway, which has a fixed aggregate bandwidth. The
// gateway models capacity only: it is assumed latency-transparent (the
// cut is chosen at the environment's lowest-bandwidth links, which the
// paper's workloads pair with their loosest latency floors).
//
// The router charges the gateway while holding its own lock; the
// declared order below keeps that nesting one-way.
type Gateway struct {
	//hmn:lockorder mu gmu
	gmu sync.Mutex
	// budget is immutable; used is the bandwidth (Mbps) of every
	// deployed cut link.
	budget float64
	used   float64 //hmn:guardedby gmu
}

// NewGateway builds a gateway with the given bandwidth budget in Mbps.
func NewGateway(budget float64) *Gateway {
	return &Gateway{budget: budget}
}

// Reserve charges bw against the budget, or reports
// ErrGatewayExhausted leaving the budget untouched.
func (g *Gateway) Reserve(bw float64) error {
	g.gmu.Lock()
	defer g.gmu.Unlock()
	if g.used+bw > g.budget {
		return ErrGatewayExhausted
	}
	g.used += bw
	return nil
}

// Release refunds a reservation.
func (g *Gateway) Release(bw float64) {
	g.gmu.Lock()
	defer g.gmu.Unlock()
	g.used -= bw
	if g.used < 0 {
		g.used = 0
	}
}

// InUse returns the bandwidth currently charged, in Mbps.
func (g *Gateway) InUse() float64 {
	g.gmu.Lock()
	defer g.gmu.Unlock()
	return g.used
}

// Budget returns the configured budget in Mbps.
func (g *Gateway) Budget() float64 { return g.budget }
