package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// residualVectors drains every shard and captures its residual-CPU
// vector for exact (byte-identical) comparison across a restart.
func residualVectors(f *Federation) [][]float64 {
	out := make([][]float64, f.Shards())
	for k := 0; k < f.Shards(); k++ {
		sh, _ := f.Shard(k)
		sh.run(func() {})
		out[k] = append([]float64(nil), sh.Session().ResidualProc()...)
	}
	return out
}

func sameVectors(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			return false
		}
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				return false
			}
		}
	}
	return true
}

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, GatewayBW: 10}
	f, err := New(testClusters(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := f.OpenTenant()
	if err != nil {
		t.Fatal(err)
	}
	var eids []string
	for i := int64(0); i < 3; i++ {
		eid, _, err := f.Admit(sid, genEnv(60+i, 8))
		if err != nil {
			t.Fatal(err)
		}
		eids = append(eids, eid)
	}
	splitEID, pl, err := f.Admit(sid, splitEnv(50))
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Split {
		t.Fatal("expected a split admission")
	}
	if err := f.Release(sid, eids[0]); err != nil {
		t.Fatal(err)
	}
	before := residualVectors(f)
	gwBefore := f.Gateway().InUse()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(Config{DataDir: dir, VerifyReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 2 {
		t.Fatalf("recovered %d shards, want 2", r.Shards())
	}
	if !sameVectors(before, residualVectors(r)) {
		t.Fatalf("recovered residuals diverge:\n%v\nvs\n%v", before, residualVectors(r))
	}
	if got := r.Gateway().InUse(); got != gwBefore {
		t.Fatalf("recovered gateway in use = %g, want %g", got, gwBefore)
	}
	ids, err := r.EnvIDs(sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("recovered %d environments, want 3 (%v)", len(ids), ids)
	}

	// New IDs keep counting past the recovered maximum.
	eid, _, err := r.Admit(sid, genEnv(99, 8))
	if err != nil {
		t.Fatal(err)
	}
	var n, prev int
	fmt.Sscanf(eid, "e%d", &n)
	fmt.Sscanf(splitEID, "e%d", &prev)
	if n <= prev {
		t.Fatalf("post-recovery env ID %q does not advance past %q", eid, splitEID)
	}
	// The recovered registry must drive releases, the split included.
	if err := r.Release(sid, splitEID); err != nil {
		t.Fatal(err)
	}
	if got := r.Gateway().InUse(); got != 0 {
		t.Fatalf("gateway in use after recovered-split release = %g", got)
	}
	if err := r.CloseTenant(sid); err != nil {
		t.Fatal(err)
	}
	sid2, err := r.OpenTenant()
	if err != nil {
		t.Fatal(err)
	}
	if sid2 == sid {
		t.Fatalf("recovered federation reused tenant ID %q", sid)
	}
}

// TestRecoverReleasesOrphanFragments simulates a crash mid-split: one
// fragment's release is forged into its shard's log after close, so on
// recovery the sibling fragment has an incomplete set and must be
// cleaned up, gateway included.
func TestRecoverReleasesOrphanFragments(t *testing.T) {
	dir := t.TempDir()
	f, err := New(testClusters(t, 2), Config{DataDir: dir, GatewayBW: 10})
	if err != nil {
		t.Fatal(err)
	}
	sid, _ := f.OpenTenant()
	_, pl, err := f.Admit(sid, splitEnv(50))
	if err != nil {
		t.Fatal(err)
	}
	fr := pl.Fragments[0]
	sh, _ := f.Shard(fr.Shard)
	sh.run(func() {})
	export := sh.Session().Export()
	var seq uint64
	found := false
	for _, a := range export.Active {
		if a.Tag == fr.Tag {
			seq, found = a.Seq, true
		}
	}
	if !found {
		t.Fatalf("fragment %q not in shard %d's active set", fr.Tag, fr.Shard)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w, _, err := wal.Open(filepath.Join(dir, shardSID(fr.Shard)), wal.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Index must land past the final snapshot's operation boundary or
	// replay treats the record as already applied.
	if err := w.Append(&wal.Record{Kind: wal.KindRelease, SID: shardSID(fr.Shard), Index: export.OpCount + 1, Release: &wal.ReleaseRec{Seq: seq}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(Config{DataDir: dir, VerifyReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ids, err := r.EnvIDs(sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("orphaned split survived recovery: %v", ids)
	}
	for k := 0; k < 2; k++ {
		sh, _ := r.Shard(k)
		sh.run(func() {})
		if sh.Session().Active() != 0 {
			t.Fatalf("shard %d keeps %d fragments after orphan cleanup", k, sh.Session().Active())
		}
	}
	if got := r.Gateway().InUse(); got != 0 {
		t.Fatalf("gateway in use after orphan cleanup = %g", got)
	}
}

func TestNewRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	f, err := New(testClusters(t, 2), Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(testClusters(t, 2), Config{DataDir: dir}); err == nil {
		t.Fatal("New accepted a directory holding shard state")
	}
}

func TestRecoverNeedsDataDir(t *testing.T) {
	if _, err := Recover(Config{}); err == nil {
		t.Fatal("Recover accepted an empty data directory")
	}
}

func TestRecoverMissingMeta(t *testing.T) {
	_, err := Recover(Config{DataDir: t.TempDir()})
	if err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("Recover on an empty directory = %v", err)
	}
}
