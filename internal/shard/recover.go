package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/wal"
)

// This file is the federation's durability layer beyond the per-shard
// WALs themselves: the tenant registry's meta file, the per-shard
// snapshot cadence, and Recover — the crash-restart path that rebuilds
// every shard from its own snapshot-plus-log-suffix and the registry
// from the fragment tags the shards' active sets carry.

// metaName is the tenant registry file inside the data directory.
const metaName = "federation.json"

// metaTmp is the atomic-rename staging name for metaName.
const metaTmp = "federation.json.tmp"

// objectiveTolerance bounds the incremental-vs-recomputed objective
// drift VerifyReplay accepts, matching the single-daemon verifier.
const objectiveTolerance = 1e-9

// fedMeta is the durable tenant registry. It changes only on tenant
// open and close — environment membership is recovered from the
// fragment tags in the shard WALs, never duplicated here.
type fedMeta struct {
	Shards      int      `json:"shards"`
	GatewayBW   float64  `json:"gateway_bw"`
	Mapper      string   `json:"mapper"`
	Proc        float64  `json:"proc"`
	Mem         int64    `json:"mem"`
	Stor        float64  `json:"stor"`
	NextSession int      `json:"next_session"`
	Tenants     []string `json:"tenants"`
}

// HasState reports whether dir already holds federation state — the
// registry file New writes before serving. Front ends branch on it to
// decide between a fresh New and a Recover.
func HasState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, metaName))
	return err == nil
}

// metaPath is the registry file's location under the data directory.
func (f *Federation) metaPath() string {
	return filepath.Join(f.cfg.DataDir, metaName)
}

// writeMetaLocked lands the tenant registry atomically: temp file,
// fsync, rename, directory fsync — a crash leaves the old registry or
// the new one, never a torn file. Caller holds f.mu; a federation
// without a data directory is a no-op.
//
//hmn:locked mu
func (f *Federation) writeMetaLocked() error {
	if f.cfg.DataDir == "" {
		return nil
	}
	meta := fedMeta{
		Shards:      len(f.shards),
		GatewayBW:   f.cfg.GatewayBW,
		Mapper:      f.cfg.Mapper,
		Proc:        f.cfg.Overhead.Proc,
		Mem:         f.cfg.Overhead.Mem,
		Stor:        f.cfg.Overhead.Stor,
		NextSession: f.nextSID,
		Tenants:     sortedTenantIDsLocked(f.tenants),
	}
	buf, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode federation meta: %w", err)
	}
	tmp := filepath.Join(f.cfg.DataDir, metaTmp)
	file, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("shard: create federation meta: %w", err)
	}
	if _, err := file.Write(buf); err != nil {
		file.Close()
		return fmt.Errorf("shard: write federation meta: %w", err)
	}
	if err := file.Sync(); err != nil {
		file.Close()
		return fmt.Errorf("shard: sync federation meta: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("shard: close federation meta: %w", err)
	}
	if err := os.Rename(tmp, f.metaPath()); err != nil {
		return fmt.Errorf("shard: publish federation meta: %w", err)
	}
	return syncDir(f.cfg.DataDir)
}

// readMeta loads the registry file.
func readMeta(dataDir string) (*fedMeta, error) {
	buf, err := os.ReadFile(filepath.Join(dataDir, metaName))
	if err != nil {
		return nil, err
	}
	var meta fedMeta
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("shard: decode federation meta: %w", err)
	}
	if meta.Shards <= 0 {
		return nil, fmt.Errorf("shard: federation meta names %d shards", meta.Shards)
	}
	return &meta, nil
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// snapshotShard takes one full-state snapshot of sh and truncates its
// log. Safe concurrently with the shard worker: the session export
// runs under the session lock, and the WAL serializes the segment
// rotation against appends.
func (f *Federation) snapshotShard(sh *Shard) error {
	return sh.w.WriteSnapshot(func() ([]wal.SessionSnap, error) {
		f.mu.Lock()
		nextEnv := f.nextEnv
		f.mu.Unlock()
		sn := wal.ExportSession(shardSID(sh.Index), sh.clusterSpec, f.cfg.Mapper, f.cfg.Overhead, uint64(nextEnv), sh.sess)
		return []wal.SessionSnap{sn}, nil
	})
}

// snapshotLoop snapshots every shard on the configured cadence until
// Close stops it.
func (f *Federation) snapshotLoop() {
	defer close(f.snapDone)
	ticker := time.NewTicker(f.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, sh := range f.shards {
				if sh.w == nil {
					continue
				}
				if err := f.snapshotShard(sh); err != nil {
					f.logf("shard %d: snapshot: %v", sh.Index, err)
				}
			}
		case <-f.snapStop:
			return
		}
	}
}

// pendingEnv accumulates one environment's fragments during recovery
// until the set is known complete or orphaned.
type pendingEnv struct {
	frags map[int]*frag // by fragment ordinal (1-based)
	fragN int
	cutBW float64
}

// Recover rebuilds a federation from cfg.DataDir: the tenant registry
// from the meta file, each shard from its own snapshot plus log
// suffix, and every deployed environment from the fragment tags the
// recovered active sets carry. Fragment sets a crash left incomplete —
// a split admission that never finished committing — are released
// shard-side (logged, so the cleanup is itself durable), preserving
// the all-or-nothing contract across restarts. Shard count, mapper and
// overhead come from the meta file; cfg's values for those fields are
// ignored.
func Recover(cfg Config) (*Federation, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("shard: recover needs a data directory")
	}
	meta, err := readMeta(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	cfg.Mapper = meta.Mapper
	cfg.Overhead.Proc, cfg.Overhead.Mem, cfg.Overhead.Stor = meta.Proc, meta.Mem, meta.Stor
	cfg.GatewayBW = meta.GatewayBW

	f := &Federation{cfg: cfg, tenants: make(map[string]*tenant)}
	if cfg.GatewayBW > 0 {
		f.gw = NewGateway(cfg.GatewayBW)
	}
	f.nextSID = meta.NextSession
	for _, sid := range meta.Tenants {
		f.tenants[sid] = &tenant{id: sid, envs: make(map[string]*envRec)}
		if n, ok := sessionOrdinal(sid); ok && n > f.nextSID {
			f.nextSID = n
		}
	}

	sums := make([]core.ResidualSummary, meta.Shards)
	maxEnv := 0
	for k := 0; k < meta.Shards; k++ {
		sh, envHigh, err := f.recoverShard(k)
		if err != nil {
			f.abortBuild()
			return nil, err
		}
		f.shards = append(f.shards, sh)
		if envHigh > maxEnv {
			maxEnv = envHigh
		}
	}
	if err := f.rebuildRegistry(); err != nil {
		f.abortBuild()
		return nil, err
	}
	for k, sh := range f.shards {
		if f.cfg.VerifyReplay {
			if err := verifyShard(sh); err != nil {
				f.abortBuild()
				return nil, err
			}
		}
		f.attachWAL(sh)
		sums[k] = sh.sess.ResidualSummary()
	}
	f.mu.Lock()
	if maxEnv > f.nextEnv {
		f.nextEnv = maxEnv
	}
	f.mu.Unlock()
	f.router = newRouter(sums, f.gw)
	f.seedRouterEnvs()
	f.start()
	return f, nil
}

// recoverShard rebuilds shard k from its WAL directory: the snapshot
// session restored at its operation boundary, then the log suffix
// replayed in append order. envHigh is the highest environment ordinal
// the shard's state names, for the global ID counter.
func (f *Federation) recoverShard(k int) (*Shard, int, error) {
	sid := shardSID(k)
	w, recovered, err := wal.Open(filepath.Join(f.cfg.DataDir, sid), f.walHooks())
	if err != nil {
		return nil, 0, err
	}
	fail := func(err error) (*Shard, int, error) {
		w.Close()
		return nil, 0, err
	}
	if recovered.TruncatedBytes > 0 {
		f.logf("shard %d: recovery truncated a torn log tail (%d bytes); the records were never acknowledged", k, recovered.TruncatedBytes)
	}

	sh := &Shard{
		Index: k,
		w:     w,
		ops:   make(chan func(), f.cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	var boundary uint64
	envHigh := 0
	if snap := recovered.Snapshot; snap != nil {
		if len(snap.Sessions) != 1 || snap.Sessions[0].SID != sid {
			return fail(fmt.Errorf("shard: %s snapshot holds %d sessions (want exactly %q)", sid, len(snap.Sessions), sid))
		}
		sn := snap.Sessions[0]
		cs, c, err := wal.RestoreSnap(sn)
		if err != nil {
			return fail(err)
		}
		sh.sess, sh.c, sh.clusterSpec = cs, c, sn.Cluster
		boundary = sn.OpCount
		envHigh = int(sn.NextEnv)
	}
	for i := range recovered.Records {
		rec := &recovered.Records[i]
		if rec.SID != sid {
			return fail(fmt.Errorf("shard: %s log names session %s", sid, rec.SID))
		}
		switch rec.Kind {
		case wal.KindOpen:
			if sh.sess != nil {
				continue
			}
			cs, c, err := wal.OpenSession(rec)
			if err != nil {
				return fail(err)
			}
			sh.sess, sh.c, sh.clusterSpec = cs, c, rec.Open.Cluster
		case wal.KindClose:
			return fail(fmt.Errorf("shard: %s log holds a close record; shards never close", sid))
		default:
			if sh.sess == nil {
				return fail(fmt.Errorf("shard: %s record %q precedes the open record", sid, rec.Kind))
			}
			if rec.Index <= boundary {
				continue
			}
			if err := wal.ReplayRecord(sh.sess, rec); err != nil {
				return fail(err)
			}
			if f.cfg.Hooks.OnReplay != nil {
				f.cfg.Hooks.OnReplay()
			}
			if high := recordEnvHigh(rec); high > envHigh {
				envHigh = high
			}
		}
	}
	if sh.sess == nil {
		return fail(fmt.Errorf("shard: %s directory holds no session state", sid))
	}
	sh.sess.SetRouteWorkers(f.cfg.RouteWorkers)
	f.attachRebalance(sh)
	return sh, envHigh, nil
}

// recordEnvHigh extracts the highest environment ordinal a replayed
// record's tags name.
func recordEnvHigh(rec *wal.Record) int {
	high := 0
	bump := func(tag string) {
		if _, eid, _, _, _, ok := parseTag(tag); ok {
			if n, ok := envOrdinal(eid); ok && n > high {
				high = n
			}
		}
	}
	switch rec.Kind {
	case wal.KindAdmit:
		bump(rec.Admit.Tag)
	case wal.KindBatch:
		for i := range rec.Batch {
			bump(rec.Batch[i].Tag)
		}
	case wal.KindFail:
		for _, rr := range rec.Fail.Repairs {
			bump(rr.Tag)
		}
	}
	return high
}

// rebuildRegistry reconstructs every tenant's environment records from
// the fragment tags in the recovered shards' active sets, releasing
// the fragments of any set the crash left incomplete and re-charging
// the gateway for the complete splits.
func (f *Federation) rebuildRegistry() error {
	// Recovery is single-threaded — the federation is unpublished — but
	// the registry fields carry the lock discipline regardless.
	f.mu.Lock()
	defer f.mu.Unlock()
	type envKey struct{ sid, eid string }
	pending := make(map[envKey]*pendingEnv)
	var order []envKey
	for k, sh := range f.shards {
		for _, a := range sh.sess.Export().Active {
			sid, eid, fragI, fragN, cut, ok := parseTag(a.Tag)
			if !ok {
				return fmt.Errorf("shard: shard %d active mapping carries unparseable tag %q", k, a.Tag)
			}
			if f.tenants[sid] == nil {
				return fmt.Errorf("shard: shard %d fragment %q names tenant %s absent from the registry", k, a.Tag, sid)
			}
			key := envKey{sid: sid, eid: eid}
			p := pending[key]
			if p == nil {
				p = &pendingEnv{frags: make(map[int]*frag), fragN: fragN, cutBW: cut}
				pending[key] = p
				order = append(order, key)
			}
			if p.fragN != fragN || p.frags[fragI] != nil {
				return fmt.Errorf("shard: environment %s/%s has conflicting fragment sets", sid, eid)
			}
			p.frags[fragI] = &frag{shard: k, m: a.M, tag: a.Tag, proc: a.M.Env.TotalProc()}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].sid != order[j].sid {
			a, aok := sessionOrdinal(order[i].sid)
			b, bok := sessionOrdinal(order[j].sid)
			if aok && bok && a != b {
				return a < b
			}
			return order[i].sid < order[j].sid
		}
		a, _ := envOrdinal(order[i].eid)
		b, _ := envOrdinal(order[j].eid)
		return a < b
	})

	touched := make(map[int]bool)
	for _, key := range order {
		p := pending[key]
		if len(p.frags) < p.fragN {
			// The crash interrupted a split admission mid-commit: the
			// router never acknowledged it, so the committed fragments are
			// orphans. Release them through their sessions (the attached-
			// later WAL hook is not needed — release here is pre-serving,
			// logged explicitly below via the shard barrier path).
			f.logf("shard: releasing %d orphan fragments of %s/%s (split never completed)", len(p.frags), key.sid, key.eid)
			for _, i := range sortedFragOrdinals(p.frags) {
				fr := p.frags[i]
				sh := f.shards[fr.shard]
				f.appendReleaseFor(sh, fr)
				if err := sh.sess.Release(fr.m); err != nil {
					return fmt.Errorf("shard: release orphan fragment %s: %w", fr.tag, err)
				}
				touched[fr.shard] = true
			}
			continue
		}
		if p.fragN > 1 {
			if f.gw == nil {
				return fmt.Errorf("shard: environment %s/%s is split but the recovered gateway budget is zero", key.sid, key.eid)
			}
			if err := f.gw.Reserve(p.cutBW); err != nil {
				return fmt.Errorf("shard: environment %s/%s cut (%g Mbps): %w", key.sid, key.eid, p.cutBW, err)
			}
		}
		rec := &envRec{cutBW: p.cutBW, split: p.fragN > 1}
		for _, i := range sortedFragOrdinals(p.frags) {
			rec.frags = append(rec.frags, p.frags[i])
		}
		owner := f.tenants[key.sid]
		owner.envs[key.eid] = rec
	}
	for k := 0; k < len(f.shards); k++ {
		if touched[k] {
			if err := f.shards[k].barrier(); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendReleaseFor logs an orphan fragment's release. The commit hook
// is not attached yet during registry rebuild, so the record is
// appended by hand — exactly what the hook would have written.
func (f *Federation) appendReleaseFor(sh *Shard, fr *frag) {
	var seq uint64
	for _, a := range sh.sess.Export().Active {
		if a.Tag == fr.tag {
			seq = a.Seq
			break
		}
	}
	rec := &wal.Record{Kind: wal.KindRelease, SID: shardSID(sh.Index), Release: &wal.ReleaseRec{Seq: seq}}
	if err := sh.w.Append(rec); err != nil {
		f.logf("shard %d: wal append (orphan release %s): %v", sh.Index, fr.tag, err)
	}
}

// sortedFragOrdinals lists a fragment map's keys ascending.
func sortedFragOrdinals(frags map[int]*frag) []int {
	out := make([]int, 0, len(frags))
	//hmn:orderinvariant
	for i := range frags {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// seedRouterEnvs aligns the router's per-shard occupancy with the
// recovered registry (newRouter seeded it from the summaries, which
// count fragments the same way — this re-read is belt and braces after
// orphan cleanup).
func (f *Federation) seedRouterEnvs() {
	for k, sh := range f.shards {
		f.router.resync(k, sh.sess.ResidualSummary())
	}
}

// verifyShard cross-checks a recovered shard before it serves: the
// incremental objective must match a two-pass recompute.
func verifyShard(sh *Shard) error {
	inc := sh.sess.ObjectiveStdDev()
	re := mapping.Objective(sh.sess.ResidualProc())
	if diff := inc - re; diff > objectiveTolerance || diff < -objectiveTolerance {
		return fmt.Errorf("shard: shard %d recovered objective %.17g diverges from recomputed %.17g", sh.Index, inc, re)
	}
	return nil
}
