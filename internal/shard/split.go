package shard

import (
	"sort"

	"repro/internal/virtual"
)

// This file plans split admissions: when no single shard can host an
// environment, the environment is cut at its lowest-bandwidth virtual
// links into per-shard fragments. The planner works in three passes:
//
//  1. Merge: virtual links are visited in descending-bandwidth order
//     (IDs break ties) through a union-find; two guest components merge
//     when their combined CPU still fits the largest shard's headroom.
//     High-bandwidth links therefore stay internal to a fragment and
//     the eventual cut falls on the cheapest links the capacity
//     constraint allows.
//  2. Pack: the merged components, largest CPU first, are placed
//     best-fit-decreasing onto the shards' residual CPU. Components
//     that land on the same shard fuse into one fragment.
//  3. Charge: links crossing shard boundaries form the cut; their
//     summed bandwidth is charged against the gateway budget.
//
// Every pass is deterministic (descending BW with ID tie-breaks,
// descending CPU with lowest-member tie-breaks, lowest shard index on
// equal fit), so a fixed submission order fragments identically on
// every run.

// group is one per-shard fragment of a plan: the (sub-)environment to
// admit on the shard, the original guest IDs it carries (nil when the
// plan is the whole environment) and the CPU reserved for it.
type group struct {
	shard int
	env   *virtual.Env
	orig  []virtual.GuestID
	proc  float64
}

// plan is a routed admission: one group on the fast path, several for
// a split. cutBW is the gateway bandwidth the plan charged.
type plan struct {
	groups   []group
	cutBW    float64
	fallback bool
	split    bool
}

// splitLocked plans a split admission against the router's current
// headroom view, reserving nothing (route charges the groups) but
// charging the gateway for the cut. Called with r.mu held.
//
//hmn:locked mu
func (r *Router) splitLocked(v *virtual.Env) (plan, error) {
	n := v.NumGuests()
	if n < 2 || r.gw == nil {
		return plan{}, ErrNoShardFits
	}
	// The largest single-shard headroom caps every fragment.
	capMax := 0.0
	for _, p := range r.resProc {
		if p > capMax {
			capMax = p
		}
	}
	if capMax <= 0 {
		return plan{}, ErrNoShardFits
	}

	// Pass 1: merge guests along descending-bandwidth links while the
	// combined CPU fits the cap.
	uf := newUnionFind(n)
	cpu := make([]float64, n)
	for g := 0; g < n; g++ {
		cpu[g] = v.Guest(virtual.GuestID(g)).Proc
		if cpu[g] > capMax {
			return plan{}, ErrNoShardFits
		}
	}
	links := append([]virtual.Link(nil), v.Links()...)
	sort.Slice(links, func(i, j int) bool {
		if links[i].BW != links[j].BW {
			return links[i].BW > links[j].BW
		}
		return links[i].ID < links[j].ID
	})
	for _, l := range links {
		a, b := uf.find(int(l.From)), uf.find(int(l.To))
		if a == b {
			continue
		}
		if cpu[a]+cpu[b] <= capMax {
			root := uf.union(a, b)
			cpu[root] = cpu[a] + cpu[b]
		}
	}

	// Collect components, members ascending by guest ID.
	compOf := make(map[int]int, 4)
	var comps []component
	for g := 0; g < n; g++ {
		root := uf.find(g)
		ci, ok := compOf[root]
		if !ok {
			ci = len(comps)
			compOf[root] = ci
			comps = append(comps, component{cpu: cpu[root]})
		}
		comps[ci].members = append(comps[ci].members, virtual.GuestID(g))
	}
	if len(comps) < 2 {
		return plan{}, ErrNoShardFits
	}

	// Pass 2: best-fit-decreasing onto the shards' residual CPU.
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := comps[order[i]], comps[order[j]]
		if a.cpu != b.cpu {
			return a.cpu > b.cpu
		}
		return a.members[0] < b.members[0]
	})
	capRem := append([]float64(nil), r.resProc...)
	shardOf := make([]int, len(comps))
	for _, ci := range order {
		best, bestLeft := -1, 0.0
		for k := range capRem {
			left := capRem[k] - comps[ci].cpu
			if left < 0 {
				continue
			}
			if best < 0 || left < bestLeft {
				best, bestLeft = k, left
			}
		}
		if best < 0 {
			return plan{}, ErrNoShardFits
		}
		shardOf[ci] = best
		capRem[best] -= comps[ci].cpu
	}

	// Fuse components that share a shard; order fragments by shard.
	guestShard := make([]int, n)
	for ci, c := range comps {
		for _, g := range c.members {
			guestShard[g] = shardOf[ci]
		}
	}
	shards := append([]int(nil), shardOf...)
	sort.Ints(shards)
	shards = dedupInts(shards)
	if len(shards) < 2 {
		// Everything fused onto one shard: its total fits there after
		// all, so no cut is needed. Can only happen when concurrent
		// refunds grew a shard between the pick and the split.
		k := shards[0]
		return plan{groups: []group{{shard: k, env: v, proc: v.TotalProc()}}, fallback: true}, nil
	}

	// Pass 3: the cut and the sub-environments.
	cutBW := 0.0
	for _, l := range v.Links() {
		if guestShard[l.From] != guestShard[l.To] {
			cutBW += l.BW
		}
	}
	if err := r.gw.Reserve(cutBW); err != nil {
		return plan{}, err
	}
	pl := plan{cutBW: cutBW, fallback: true, split: true}
	for _, k := range shards {
		g := buildFragment(v, guestShard, k)
		pl.groups = append(pl.groups, g)
	}
	return pl, nil
}

// component is one merged guest set.
type component struct {
	members []virtual.GuestID // ascending
	cpu     float64
}

// buildFragment extracts the sub-environment of the guests assigned to
// shard k, preserving guest names and the intra-fragment links.
func buildFragment(v *virtual.Env, guestShard []int, k int) group {
	sub := virtual.NewEnv()
	origToSub := make([]virtual.GuestID, len(guestShard))
	g := group{shard: k, env: sub}
	for i := range guestShard {
		origToSub[i] = -1
	}
	for i := 0; i < len(guestShard); i++ {
		if guestShard[i] != k {
			continue
		}
		gu := v.Guest(virtual.GuestID(i))
		origToSub[i] = sub.AddGuest(gu.Name, gu.Proc, gu.Mem, gu.Stor)
		g.orig = append(g.orig, virtual.GuestID(i))
		g.proc += gu.Proc
	}
	for _, l := range v.Links() {
		if guestShard[l.From] == k && guestShard[l.To] == k {
			sub.AddLink(origToSub[l.From], origToSub[l.To], l.BW, l.Lat)
		}
	}
	return g
}

// unionFind is a plain union-find with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the trees rooted at a and b and returns the new root.
func (uf *unionFind) union(a, b int) int {
	if uf.size[a] < uf.size[b] {
		a, b = b, a
	}
	uf.parent[b] = a
	uf.size[a] += uf.size[b]
	return a
}

// dedupInts compacts a sorted slice in place.
func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
