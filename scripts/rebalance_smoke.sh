#!/usr/bin/env bash
# rebalance_smoke.sh — crash/recovery smoke for the background rebalancer.
#
# Boots hmnd with the background rebalancer enabled, churns a session
# (map, map, map, release the middle tenant) so the packing develops the
# imbalance the rebalancer exists to fix, drains the one-shot rebalance
# endpoint to a local optimum, kills the daemon with SIGKILL, verifies
# the data directory with hmnwal (the migrate records must land in the
# log), restarts with -replay, and asserts the recovered daemon answers
# byte-identical residuals — migrations and all — then keeps serving.
#
# Run from the repo root (or via `make rebalance-smoke`).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$workdir"
    return 0
}
trap cleanup EXIT

addr=127.0.0.1:18473
base=http://$addr

echo "--- build hmnd, hmnwal and the specs"
go build -o "$workdir/hmnd" ./cmd/hmnd
go build -o "$workdir/hmnwal" ./cmd/hmnwal
go run ./cmd/hmngen -cluster "$workdir/cluster.json" -topology torus -hosts 40
go run ./cmd/hmngen -env "$workdir/env-a.json" -class high -guests 30
go run ./cmd/hmngen -env "$workdir/env-b.json" -class high -guests 20 -seed 7

start_daemon() {
    "$workdir/hmnd" -addr "$addr" -data-dir "$workdir/data" \
        -rebalance-interval 5ms -rebalance-max-moves 8 "$@" &
    pid=$!
    for _ in $(seq 1 100); do
        body=$(curl -fsS "$base/v1/healthz" 2>/dev/null || true)
        if [ "$body" = "serving" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon never reached 'serving'" >&2
    exit 1
}

map_env() {
    curl -fsS -X POST "$base/v1/sessions/s1/envs" \
        -d "{\"env\": $(cat "$1")}" |
        grep -q "\"id\": *\"$2\""
}

echo "--- boot with the rebalancer on, churn a session"
start_daemon
curl -fsS -X POST "$base/v1/sessions" \
    -d "{\"cluster\": $(cat "$workdir/cluster.json"), \"mapper\": \"HMN\"}" |
    grep -q '"id": *"s1"'
map_env "$workdir/env-a.json" e1
map_env "$workdir/env-b.json" e2
map_env "$workdir/env-a.json" e3
code=$(curl -sS -X DELETE "$base/v1/sessions/s1/envs/e2" -o /dev/null -w '%{http_code}')
[ "$code" = "204" ] || { echo "release of e2: HTTP $code" >&2; exit 1; }

echo "--- drain the one-shot endpoint to a local optimum"
total=0
for _ in $(seq 1 50); do
    moves=$(curl -fsS -X POST "$base/v1/sessions/s1/rebalance" |
        sed -n 's/.*"moves": *\([0-9]*\).*/\1/p')
    [ -n "$moves" ] || { echo "rebalance response had no move count" >&2; exit 1; }
    total=$((total + moves))
    [ "$moves" = "0" ] && break
done
[ "$moves" = "0" ] || { echo "rebalancer never converged in 50 rounds" >&2; exit 1; }
echo "    rebalancer committed $total moves"
curl -fsS "$base/v1/sessions/s1/residuals" >"$workdir/residuals.before"

echo "--- kill -9, then inspect the directory read-only"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
"$workdir/hmnwal" dump "$workdir/data" >/dev/null
"$workdir/hmnwal" verify "$workdir/data"

echo "--- restart with -replay, compare recovered state"
start_daemon -replay
curl -fsS "$base/v1/sessions/s1/residuals" >"$workdir/residuals.after"
cmp "$workdir/residuals.before" "$workdir/residuals.after"
map_env "$workdir/env-b.json" e4
code=$(curl -sS -X DELETE "$base/v1/sessions/s1/envs/e4" -o /dev/null -w '%{http_code}')
[ "$code" = "204" ] || { echo "release of e4: HTTP $code" >&2; exit 1; }

echo "--- graceful shutdown (drain, final snapshot) and re-verify"
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
"$workdir/hmnwal" verify "$workdir/data"
echo "rebalance smoke OK"
