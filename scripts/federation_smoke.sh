#!/usr/bin/env bash
# federation_smoke.sh — end-to-end crash/recovery smoke for sharded hmnd.
#
# Boots hmnd in federation mode (4 shards, one WAL directory each),
# churns environments across several tenants over HTTP, kills the
# daemon with SIGKILL, verifies every shard's WAL independently with
# hmnwal, restarts with -replay (no -shard-cluster: the shards rebuild
# themselves from their own directories), and asserts each shard
# answers byte-identical residuals and the federation keeps handing
# out fresh IDs. A final graceful shutdown checks the drain-then-
# snapshot path leaves all four directories hmnwal still accepts.
#
# Run from the repo root (or via `make federation-smoke`).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$workdir"
    return 0
}
trap cleanup EXIT

addr=127.0.0.1:18473
base=http://$addr
shards=4

echo "--- build hmnd, hmnwal and the specs"
go build -o "$workdir/hmnd" ./cmd/hmnd
go build -o "$workdir/hmnwal" ./cmd/hmnwal
go run ./cmd/hmngen -cluster "$workdir/cluster.json" -topology torus -hosts 16
go run ./cmd/hmngen -env "$workdir/env.json" -class high -guests 10

start_daemon() {
    "$workdir/hmnd" -addr "$addr" -shards "$shards" -gateway-bw 50 \
        -data-dir "$workdir/data" "$@" &
    pid=$!
    for _ in $(seq 1 100); do
        body=$(curl -fsS "$base/v1/healthz" 2>/dev/null || true)
        if [ "$body" = "serving" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon never reached 'serving'" >&2
    exit 1
}

echo "--- boot 4 shards, churn environments across 8 tenants"
start_daemon -shard-cluster "$workdir/cluster.json"
# Eight tenants cover all four shards through the consistent-hash fast
# path, so every shard's WAL sees real records before the crash.
for t in $(seq 1 8); do
    curl -fsS -X POST "$base/v1/sessions" | grep -q "\"id\": *\"s$t\""
done
# Environment IDs are a federation-wide counter: eight admissions in
# tenant order take e1..e8, one per tenant.
for t in $(seq 1 8); do
    curl -fsS -X POST "$base/v1/sessions/s$t/envs" \
        -d "{\"env\": $(cat "$workdir/env.json")}" |
        grep -q "\"id\": *\"e$t\""
done
code=$(curl -sS -X DELETE "$base/v1/sessions/s2/envs/e2" -o /dev/null -w '%{http_code}')
[ "$code" = "204" ] || { echo "release of e2: HTTP $code" >&2; exit 1; }
for k in $(seq 0 $((shards - 1))); do
    curl -fsS "$base/v1/shards/$k/residuals" >"$workdir/residuals.$k.before"
done

echo "--- kill -9, then inspect every shard directory read-only"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
for k in $(seq 0 $((shards - 1))); do
    "$workdir/hmnwal" dump "$workdir/data/shard-$k" >/dev/null
    "$workdir/hmnwal" verify "$workdir/data/shard-$k"
done

echo "--- restart with -replay, compare every shard's recovered ledger"
start_daemon -replay
for k in $(seq 0 $((shards - 1))); do
    curl -fsS "$base/v1/shards/$k/residuals" >"$workdir/residuals.$k.after"
    cmp "$workdir/residuals.$k.before" "$workdir/residuals.$k.after"
done
curl -fsS -X POST "$base/v1/sessions/s1/envs" \
    -d "{\"env\": $(cat "$workdir/env.json")}" |
    grep -q '"id": *"e9"'
code=$(curl -sS -X DELETE "$base/v1/sessions/s5/envs/e5" -o /dev/null -w '%{http_code}')
[ "$code" = "204" ] || { echo "release of recovered e5: HTTP $code" >&2; exit 1; }

echo "--- graceful shutdown (drain, final snapshots) and re-verify"
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
for k in $(seq 0 $((shards - 1))); do
    "$workdir/hmnwal" verify "$workdir/data/shard-$k"
done
echo "federation smoke OK"
