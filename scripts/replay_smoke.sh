#!/usr/bin/env bash
# replay_smoke.sh — end-to-end crash/recovery smoke for the hmnd WAL.
#
# Boots hmnd with a data directory, opens a session and maps an
# environment over HTTP, kills the daemon with SIGKILL, verifies the
# data directory with hmnwal, restarts with -replay, and asserts the
# recovered daemon answers byte-identical residuals and keeps handing
# out fresh IDs. A final graceful shutdown checks the drain-then-
# snapshot path leaves a directory hmnwal still accepts.
#
# Run from the repo root (or via `make replay-smoke`).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    rm -rf "$workdir"
    return 0
}
trap cleanup EXIT

addr=127.0.0.1:18472
base=http://$addr

echo "--- build hmnd, hmnwal and the specs"
go build -o "$workdir/hmnd" ./cmd/hmnd
go build -o "$workdir/hmnwal" ./cmd/hmnwal
go run ./cmd/hmngen -cluster "$workdir/cluster.json" -topology torus -hosts 40
go run ./cmd/hmngen -env "$workdir/env.json" -class high -guests 30

start_daemon() {
    "$workdir/hmnd" -addr "$addr" -data-dir "$workdir/data" "$@" &
    pid=$!
    for _ in $(seq 1 100); do
        body=$(curl -fsS "$base/v1/healthz" 2>/dev/null || true)
        if [ "$body" = "serving" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon never reached 'serving'" >&2
    exit 1
}

echo "--- boot, open a session, map an environment"
start_daemon
curl -fsS -X POST "$base/v1/sessions" \
    -d "{\"cluster\": $(cat "$workdir/cluster.json"), \"mapper\": \"HMN\"}" |
    grep -q '"id": *"s1"'
curl -fsS -X POST "$base/v1/sessions/s1/envs" \
    -d "{\"env\": $(cat "$workdir/env.json")}" |
    grep -q '"id": *"e1"'
curl -fsS "$base/v1/sessions/s1/residuals" >"$workdir/residuals.before"

echo "--- kill -9, then inspect the directory read-only"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
"$workdir/hmnwal" dump "$workdir/data" >/dev/null
"$workdir/hmnwal" verify "$workdir/data"

echo "--- restart with -replay, compare recovered state"
start_daemon -replay
curl -fsS "$base/v1/sessions/s1/residuals" >"$workdir/residuals.after"
cmp "$workdir/residuals.before" "$workdir/residuals.after"
curl -fsS -X POST "$base/v1/sessions/s1/envs" \
    -d "{\"env\": $(cat "$workdir/env.json")}" |
    grep -q '"id": *"e2"'
code=$(curl -sS -X DELETE "$base/v1/sessions/s1/envs/e1" -o /dev/null -w '%{http_code}')
[ "$code" = "204" ] || { echo "release of recovered e1: HTTP $code" >&2; exit 1; }

echo "--- graceful shutdown (drain, final snapshot) and re-verify"
kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
"$workdir/hmnwal" verify "$workdir/data"
echo "replay smoke OK"
