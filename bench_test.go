// Benchmarks regenerating the paper's evaluation artifacts:
//
//   - BenchmarkTable2 measures each heuristic's mapping run on
//     representative scenario rows of Table 2 and reports the achieved
//     objective (objective metric) alongside the mapping time (ns/op).
//   - BenchmarkTable3 measures the emulated experiment on HMN and RA
//     mappings and reports its makespan (makespan_s metric) — the Table 3
//     quantity.
//   - BenchmarkFigure1 measures HMN's mapping time as the number of
//     virtual links grows on the torus (and, for contrast, the switched)
//     cluster — the Figure 1 series; the links metric carries the x-axis.
//   - BenchmarkAblation* quantify the design choices DESIGN.md §7 calls
//     out: the Migration stage, the host re-sort in Hosting, the
//     networking link order, the Migration load metric and A*Prune's
//     dominance pruning.
//   - BenchmarkAStarPrune and BenchmarkDijkstra measure the routing
//     primitives in isolation.
//
// Full-matrix table regeneration (30 repetitions, failure counts) is the
// job of cmd/hmnbench; benchmarks measure single representative runs.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/exact"
	"repro/internal/exp"
	"repro/internal/ga"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/virtual"
	"repro/internal/workload"
)

// benchInstance is a prepared (cluster, environment) pair.
type benchInstance struct {
	name  string
	c     *Cluster
	env   *virtual.Env
	ratio float64
}

// benchScenarios builds representative Table 2 rows: the easiest and
// hardest high-level rows plus the two low-level extremes, on a given
// topology.
func benchScenarios(b *testing.B, topo exp.Topology) []benchInstance {
	b.Helper()
	rows := []struct {
		label string
		scn   exp.Scenario
	}{
		{"2.5to1_d0.015", exp.Scenario{Ratio: 2.5, Density: 0.015, Class: exp.HighLevel}},
		{"7.5to1_d0.02", exp.Scenario{Ratio: 7.5, Density: 0.02, Class: exp.HighLevel}},
		{"20to1_d0.01", exp.Scenario{Ratio: 20, Density: 0.01, Class: exp.LowLevel}},
		{"50to1_d0.01", exp.Scenario{Ratio: 50, Density: 0.01, Class: exp.LowLevel}},
	}
	out := make([]benchInstance, 0, len(rows))
	for i, r := range rows {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
		var (
			c   *Cluster
			err error
		)
		if topo == exp.Switched {
			c, err = topology.Switched(specs, workload.SwitchPorts, workload.PhysLinkBW, workload.PhysLinkLat)
		} else {
			c, err = topology.Torus2D(specs, workload.TorusRows, workload.TorusCols, workload.PhysLinkBW, workload.PhysLinkLat)
		}
		if err != nil {
			b.Fatal(err)
		}
		env := workload.GenerateEnv(r.scn.Params(40), rng)
		out = append(out, benchInstance{name: r.label, c: c, env: env, ratio: r.scn.Ratio})
	}
	return out
}

func benchMapper(name string, seed int64) core.Mapper {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "HMN":
		return &core.HMN{}
	case "R":
		return &baseline.Random{Rand: rng, MaxTries: 50}
	case "RA":
		return &baseline.Random{Rand: rng, MaxTries: 50, UseAStar: true}
	case "HS":
		return &baseline.HostingSearch{Rand: rng, MaxTries: 50}
	}
	panic("unknown mapper " + name)
}

// BenchmarkTable2 regenerates the Table 2 comparison: per scenario row
// and heuristic, the time to compute a mapping and the objective reached.
// Failed attempts (the random baselines on the torus — Table 2's failure
// rows) report objective -1 and still measure the time burned.
func BenchmarkTable2(b *testing.B) {
	for _, topo := range []exp.Topology{exp.Torus, exp.Switched} {
		insts := benchScenarios(b, topo)
		for _, inst := range insts {
			for _, h := range []string{"HMN", "R", "RA", "HS"} {
				// The uninformed baselines burn their whole retry budget
				// on the heavy low-level rows; benchmark them on the
				// high-level rows only.
				if (h == "R" || h == "HS") && inst.ratio >= 20 {
					continue
				}
				b.Run(fmt.Sprintf("%s/%s/%s", topo, inst.name, h), func(b *testing.B) {
					b.ReportAllocs()
					obj := -1.0
					for i := 0; i < b.N; i++ {
						m, err := benchMapper(h, int64(i)).Map(inst.c, inst.env)
						if err == nil {
							obj = m.Objective(VMMOverhead{})
						}
					}
					b.ReportMetric(obj, "objective")
				})
			}
		}
	}
}

// BenchmarkTable3 regenerates the Table 3 quantity: the emulated
// experiment's execution on a prepared mapping, reporting the simulated
// makespan (the table's cell value) and measuring the simulator's own
// speed.
func BenchmarkTable3(b *testing.B) {
	for _, topo := range []exp.Topology{exp.Torus, exp.Switched} {
		insts := benchScenarios(b, topo)
		for _, inst := range insts {
			for _, h := range []string{"HMN", "RA"} {
				m, err := benchMapper(h, 1).Map(inst.c, inst.env)
				if err != nil {
					continue
				}
				cfg := sim.ExperimentConfig{BaseSeconds: 2, TransferSeconds: 0.05}
				b.Run(fmt.Sprintf("%s/%s/%s", topo, inst.name, h), func(b *testing.B) {
					makespan := 0.0
					for i := 0; i < b.N; i++ {
						makespan = sim.RunExperiment(m, cfg).Makespan
					}
					b.ReportMetric(makespan, "makespan_s")
				})
			}
		}
	}
}

// BenchmarkFigure1 regenerates the Figure 1 series: HMN mapping time as a
// function of the number of virtual links, on both cluster topologies.
// The links metric is the x-axis of the figure; ns/op is the y-axis.
func BenchmarkFigure1(b *testing.B) {
	for _, topo := range []exp.Topology{exp.Torus, exp.Switched} {
		for _, scn := range []exp.Scenario{
			{Ratio: 2.5, Density: 0.015, Class: exp.HighLevel},
			{Ratio: 5, Density: 0.02, Class: exp.HighLevel},
			{Ratio: 7.5, Density: 0.025, Class: exp.HighLevel},
			{Ratio: 20, Density: 0.01, Class: exp.LowLevel},
			{Ratio: 30, Density: 0.01, Class: exp.LowLevel},
			{Ratio: 40, Density: 0.01, Class: exp.LowLevel},
			{Ratio: 50, Density: 0.01, Class: exp.LowLevel},
		} {
			rng := rand.New(rand.NewSource(7))
			specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
			var (
				c   *Cluster
				err error
			)
			if topo == exp.Switched {
				c, err = topology.Switched(specs, workload.SwitchPorts, workload.PhysLinkBW, workload.PhysLinkLat)
			} else {
				c, err = topology.Torus2D(specs, workload.TorusRows, workload.TorusCols, workload.PhysLinkBW, workload.PhysLinkLat)
			}
			if err != nil {
				b.Fatal(err)
			}
			env := workload.GenerateEnv(scn.Params(40), rng)
			b.Run(fmt.Sprintf("%s/links_%d", topo, env.NumLinks()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := (&core.HMN{}).Map(c, env); err != nil {
						b.Skipf("instance infeasible: %v", err)
					}
				}
				b.ReportMetric(float64(env.NumLinks()), "links")
			})
		}
	}
}

// ablationInstance prepares the shared workload of the ablation benches.
func ablationInstance(b *testing.B) (*Cluster, *virtual.Env) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Torus2D(specs, 8, 5, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.HighLevelParams(200, 0.02), rng)
	return c, env
}

func runHMNVariant(b *testing.B, h *core.HMN, c *Cluster, env *virtual.Env) {
	b.Helper()
	obj := -1.0
	for i := 0; i < b.N; i++ {
		m, err := h.Map(c, env)
		if err != nil {
			b.Fatal(err)
		}
		obj = m.Objective(VMMOverhead{})
	}
	b.ReportMetric(obj, "objective")
}

// BenchmarkAblationMigration isolates stage 2: HMN with and without the
// Migration stage (DESIGN.md §7).
func BenchmarkAblationMigration(b *testing.B) {
	c, env := ablationInstance(b)
	b.Run("with_migration", func(b *testing.B) { runHMNVariant(b, &core.HMN{}, c, env) })
	b.Run("without_migration", func(b *testing.B) {
		runHMNVariant(b, &core.HMN{DisableMigration: true}, c, env)
	})
}

// BenchmarkAblationHostResort isolates the Hosting stage's re-sort of the
// host list after every placement.
func BenchmarkAblationHostResort(b *testing.B) {
	c, env := ablationInstance(b)
	b.Run("resort", func(b *testing.B) { runHMNVariant(b, &core.HMN{}, c, env) })
	b.Run("no_resort", func(b *testing.B) {
		runHMNVariant(b, &core.HMN{DisableHostResort: true}, c, env)
	})
}

// BenchmarkAblationLoadMetric compares the Migration stage's two load
// rankings: absolute residual MIPS (paper) vs utilisation fraction.
func BenchmarkAblationLoadMetric(b *testing.B) {
	c, env := ablationInstance(b)
	b.Run("residual_mips", func(b *testing.B) { runHMNVariant(b, &core.HMN{}, c, env) })
	b.Run("utilization", func(b *testing.B) {
		runHMNVariant(b, &core.HMN{Metric: core.LoadUtilization}, c, env)
	})
}

// BenchmarkAblationNetworkOrder compares the Networking stage's link
// orders: descending bandwidth (paper), ascending, random.
func BenchmarkAblationNetworkOrder(b *testing.B) {
	c, env := ablationInstance(b)
	orders := []struct {
		name  string
		order core.LinkOrder
	}{
		{"descending_bw", core.OrderDescendingBW},
		{"ascending_bw", core.OrderAscendingBW},
		{"random", core.OrderRandom},
	}
	for _, o := range orders {
		b.Run(o.name, func(b *testing.B) {
			runHMNVariant(b, &core.HMN{NetworkOrder: o.order, Rand: rand.New(rand.NewSource(1))}, c, env)
		})
	}
}

// BenchmarkAblationAStarDominance quantifies A*Prune's dominance pruning
// on the torus (it does not change results — see the graph tests — only
// the candidate-set size).
func BenchmarkAblationAStarDominance(b *testing.B) {
	c, env := ablationInstance(b)
	b.Run("dominance", func(b *testing.B) { runHMNVariant(b, &core.HMN{}, c, env) })
	b.Run("no_dominance", func(b *testing.B) {
		runHMNVariant(b, &core.HMN{AStar: graph.AStarPruneOptions{DisableDominance: true}}, c, env)
	})
}

// BenchmarkAStarPrune measures the raw modified A*Prune search between
// random host pairs on the torus with paper-typical constraints.
func BenchmarkAStarPrune(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Torus2D(specs, 8, 5, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	g := c.Net()
	bw := g.NominalBandwidth()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := graph.NodeID(i % 40)
		dst := graph.NodeID((i*7 + 13) % 40)
		if src == dst {
			continue
		}
		if _, ok := graph.AStarPrune(g, src, dst, 1.0, 45, bw, nil); !ok {
			b.Fatal("torus pair should be routable")
		}
	}
}

// BenchmarkDijkstra measures the latency-table computation (the ar[]
// precomputation dominating the Networking stage per §5.2).
func BenchmarkDijkstra(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Torus2D(specs, 8, 5, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	g := c.Net()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.DijkstraLatency(g, graph.NodeID(i%40))
	}
}

// BenchmarkExperimentSim measures the discrete-event simulator on a
// 2000-guest mapping (the heaviest Table 3 cell).
func BenchmarkExperimentSim(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Switched(specs, 64, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.LowLevelParams(2000, 0.01), rng)
	m, err := (&core.HMN{}).Map(c, env)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.ExperimentConfig{BaseSeconds: 2, TransferSeconds: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunExperiment(m, cfg)
	}
}

// BenchmarkMap measures the full HMN pipeline — the headline hot path
// this repo's incremental kernels target — at three scales: the paper's
// heaviest row (2000 guests on the 40-host switched cluster), then 5000
// and 10000 guests on 100- and 200-host fabrics matching the extended
// BENCH_scale_seed1.json scenarios (density shrinks with guest count to
// hold ~10 links/guest, and the big fabrics use 10G/1ms trunks — the
// same parameters exp.ScaleScenarios uses, without which the aggregate
// virtual bandwidth saturates the physical fabric and mapping correctly
// fails). The large cases report allocations and exercise the parallel
// Networking stage via RouteWorkers. Compare against the map_seconds
// series of BENCH_scale_seed1.json.
func BenchmarkMap(b *testing.B) {
	cases := []struct {
		name    string
		hosts   int
		guests  int
		density float64
		linkBW  float64
		linkLat float64
		workers int
	}{
		{"2000g_40h", 40, 2000, 0.01, workload.PhysLinkBW, workload.PhysLinkLat, 0},
		{"5000g_100h", 100, 5000, 0.004, 10000, 1, 0},
		{"10000g_200h", 200, 10000, 0.002, 10000, 1, 0},
		{"10000g_200h_par", 200, 10000, 0.002, 10000, 1, runtime.GOMAXPROCS(0)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			params := workload.PaperClusterParams()
			params.Hosts = tc.hosts
			specs := workload.GenerateHosts(params, rng)
			c, err := topology.Switched(specs, 64, tc.linkBW, tc.linkLat)
			if err != nil {
				b.Fatal(err)
			}
			env := workload.GenerateEnv(workload.LowLevelParams(tc.guests, tc.density), rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (&core.HMN{RouteWorkers: tc.workers}).Map(c, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMigration isolates the Migration stage (§4.2) at 2000 guests
// on a 500-host cluster: one Hosting pass prepares the assignment, then
// every iteration replays stage 2 alone on a cloned ledger. The stage
// never touches links, so the large host count exercises the what-if
// kernel (candidate scans × objective evaluations) without the latency
// feasibility limits routing would impose at this scale.
func BenchmarkMigration(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	params := workload.PaperClusterParams()
	params.Hosts = 500
	specs := workload.GenerateHosts(params, rng)
	c, err := topology.Switched(specs, 64, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.LowLevelParams(2000, 0.01), rng)
	led, err := NewLedger(c, VMMOverhead{})
	if err != nil {
		b.Fatal(err)
	}
	assign := make([]graph.NodeID, env.NumGuests())
	for i := range assign {
		assign[i] = Unassigned
	}
	if err := core.HostingStage(led, env, assign); err != nil {
		b.Fatal(err)
	}
	moves := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		led2 := led.Clone()
		assign2 := append([]graph.NodeID(nil), assign...)
		b.StartTimer()
		moves = core.MigrationStage(led2, env, assign2)
	}
	b.ReportMetric(float64(moves), "moves")
}

// BenchmarkExactSolver measures the branch-and-bound optimum on the
// optimality-gap instance size (8 guests, 5 hosts).
func BenchmarkExactSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	specs := workload.GenerateHosts(workload.ClusterParams{
		Hosts: 5, ProcMin: 1000, ProcMax: 3000,
		MemMin: 1024, MemMax: 3072, StorMin: 1000, StorMax: 3000,
	}, rng)
	c, err := topology.Ring(specs, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.VirtualParams{
		Guests: 8, Density: 0.3,
		ProcMin: 100, ProcMax: 400,
		MemMin: 256, MemMax: 1024,
		StorMin: 100, StorMax: 400,
		BWMin: 0.5, BWMax: 2,
		LatMin: 20, LatMax: 60,
	}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Solve(c, env, exact.Options{}); err != nil {
			b.Skipf("instance infeasible: %v", err)
		}
	}
}

// BenchmarkDeployPlan measures turning a 2000-guest mapping into its
// per-host deployment artifacts.
func BenchmarkDeployPlan(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Torus2D(specs, 8, 5, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.LowLevelParams(2000, 0.01), rng)
	m, err := (&core.HMN{}).Map(c, env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deploy.Build(m, VMMOverhead{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionMapRelease measures one tenant's deploy+teardown cycle
// on a shared cluster.
func BenchmarkSessionMapRelease(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Torus2D(specs, 8, 5, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := core.NewSession(c, VMMOverhead{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.HighLevelParams(60, 0.03), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sess.Map(env)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.Release(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionConcurrentAdmit measures admission throughput when
// several testers hammer one session at once — the scenario the
// optimistic snapshot/validate/commit pipeline exists for. Each op is a
// full Map+Release of a small environment on the switched cluster;
// subbenchmarks scale the worker count, and conflicts/op and
// fallbacks/op report how often optimistic attempts lost their
// validation race. Compare ns/op across worker counts: with the old
// whole-mapping lock the numbers were flat; now they should drop until
// commit serialisation or the host's cores saturate.
func BenchmarkSessionConcurrentAdmit(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Switched(specs, workload.SwitchPorts, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	// A pool of distinct small environments: every subset of them fits
	// the cluster at once, so no admission can legitimately fail.
	envs := make([]*virtual.Env, 16)
	for i := range envs {
		envs[i] = workload.GenerateEnv(workload.HighLevelParams(16, 0.02),
			rand.New(rand.NewSource(int64(1000+i))))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			sess, err := core.NewSession(c, VMMOverhead{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			before := sess.AdmissionStats()
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var failed atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						m, err := sess.Map(envs[int(i)%len(envs)])
						if err != nil {
							failed.Add(1)
							return
						}
						if err := sess.Release(m); err != nil {
							failed.Add(1)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if failed.Load() > 0 {
				b.Fatalf("%d admissions failed on a cluster that fits every environment", failed.Load())
			}
			after := sess.AdmissionStats()
			b.ReportMetric(float64(after.Conflicts-before.Conflicts)/float64(b.N), "conflicts/op")
			b.ReportMetric(float64(after.Fallbacks-before.Fallbacks)/float64(b.N), "fallbacks/op")
		})
	}
}

// BenchmarkFatTreeMapping measures HMN on a k=8 fat-tree (128 hosts) —
// a modern multipath fabric far denser than the paper's topologies.
func BenchmarkFatTreeMapping(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	params := workload.PaperClusterParams()
	params.Hosts = 128
	specs := workload.GenerateHosts(params, rng)
	c, err := topology.FatTree(specs, 8, workload.PhysLinkBW, 1)
	if err != nil {
		b.Fatal(err)
	}
	env := workload.GenerateEnv(workload.HighLevelParams(512, 0.01), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&core.HMN{}).Map(c, env); err != nil {
			b.Skipf("instance infeasible: %v", err)
		}
	}
}

// BenchmarkDFSTreeVsAStar contrasts the baseline's uninformed tree
// search with the modified A*Prune on identical torus queries.
func BenchmarkDFSTreeVsAStar(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	specs := workload.GenerateHosts(workload.PaperClusterParams(), rng)
	c, err := topology.Torus2D(specs, 8, 5, workload.PhysLinkBW, workload.PhysLinkLat)
	if err != nil {
		b.Fatal(err)
	}
	g := c.Net()
	bw := g.NominalBandwidth()
	b.Run("dfs_tree", func(b *testing.B) {
		r := rand.New(rand.NewSource(1))
		found := 0
		for i := 0; i < b.N; i++ {
			if _, ok := graph.DFSTreePath(g, graph.NodeID(i%40), graph.NodeID((i*7+13)%40), 1, 45, bw, r); ok {
				found++
			}
		}
		if b.N > 0 {
			b.ReportMetric(float64(found)/float64(b.N), "success_rate")
		}
	})
	b.Run("astar_prune", func(b *testing.B) {
		found := 0
		for i := 0; i < b.N; i++ {
			if _, ok := graph.AStarPrune(g, graph.NodeID(i%40), graph.NodeID((i*7+13)%40), 1, 45, bw, nil); ok {
				found++
			}
		}
		if b.N > 0 {
			b.ReportMetric(float64(found)/float64(b.N), "success_rate")
		}
	})
}

// BenchmarkGAMapper measures the memetic GA refinement on a paper-sized
// instance, reporting the objective it reaches (compare the HMN rows of
// BenchmarkTable2).
func BenchmarkGAMapper(b *testing.B) {
	c, env := ablationInstance(b)
	obj := -1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &ga.Mapper{Rand: rand.New(rand.NewSource(1)), Generations: 40}
		m, err := g.Map(c, env)
		if err != nil {
			b.Fatal(err)
		}
		obj = m.Objective(VMMOverhead{})
	}
	b.ReportMetric(obj, "objective")
}
